package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"earthing/internal/bem"
	"earthing/internal/core"
	"earthing/internal/fsio"
	"earthing/internal/grid"
	"earthing/internal/linalg"
)

// AssemblyCaseBench records the hot-path benchmark for one Balaidos soil
// case: reference image-series kernel vs the flat kernel for matrix
// generation, and the row-by-row reference Cholesky vs the blocked (and
// mixed-precision) packed factorization. Single-thread times are minima over
// Quality.Repeats; the *_parallel_ms rows rerun assembly at the configured
// worker width.
type AssemblyCaseBench struct {
	// Soil is the §5.2 case name (A/B/C).
	Soil string `json:"soil"`
	// Elements and DoF describe the discretization for this case.
	Elements int `json:"elements"`
	DoF      int `json:"dof"`

	// Single-thread assembly wall times per kernel.
	AssemblyRefMs  float64 `json:"assembly_reference_ms"`
	AssemblyFlatMs float64 `json:"assembly_flat_ms"`
	// Parallel assembly wall times per kernel.
	AssemblyRefParMs  float64 `json:"assembly_reference_parallel_ms"`
	AssemblyFlatParMs float64 `json:"assembly_flat_parallel_ms"`

	// Single-thread factorization wall times.
	FactorRefMs     float64 `json:"factor_reference_ms"`
	FactorBlockedMs float64 `json:"factor_blocked_ms"`
	FactorMixedMs   float64 `json:"factor_mixed_ms"`

	// Combined matrix generation (assembly + factorization), single thread:
	// reference kernel + reference Cholesky vs flat kernel + blocked
	// Cholesky.
	CombinedRefMs   float64 `json:"combined_reference_ms"`
	CombinedFastMs  float64 `json:"combined_fast_ms"`
	CombinedSpeedup float64 `json:"combined_speedup"`

	// ReqReference is the grid resistance of the reference path (Ω).
	ReqReference float64 `json:"req_reference_ohm"`
	// BlockedBitIdentical reports whether the blocked float64 factorization
	// reproduces the reference solution bit for bit (contract: always true).
	BlockedBitIdentical bool `json:"blocked_bit_identical"`
	// MaxAbsDiffReqFlat / MaxAbsDiffReqMixed are |ΔReq| of the flat-kernel
	// and mixed-precision paths against the reference (contract: ≤ 1e-10
	// relative; recorded in Ω).
	MaxAbsDiffReqFlat  float64 `json:"max_abs_diff_req_flat_ohm"`
	MaxAbsDiffReqMixed float64 `json:"max_abs_diff_req_mixed_ohm"`
}

// AssemblyBench is the BENCH_assembly.json record: the hot-path benchmark on
// the Balaidos grid under soil cases C and B. Case C — the paper's central
// two-layer Balaidos analysis, whose rods cross the interface and exercise
// both layer image ladders — is the headline: its 4-image equal-weight
// groups are the workload the flat kernel's fused-logarithm path targets.
// Case B (grid below the interface, single-image groups) bounds the gain on
// the ladder shape with no fusion opportunity.
type AssemblyBench struct {
	// Workers is the parallel width of the *_parallel_ms rows.
	Workers int `json:"workers"`
	// CombinedSpeedup echoes the headline case C single-thread combined
	// speedup (acceptance bar: ≥ 2).
	CombinedSpeedup float64 `json:"combined_speedup"`

	Cases []AssemblyCaseBench `json:"cases"`
}

// reqOf solves r·σ = ν and reduces to the grid resistance, mirroring the
// engine's results stage, with the factorization chosen by factor.
func reqOf(m *grid.Mesh, r *linalg.SymMatrix, factor func(*linalg.SymMatrix) (*linalg.Cholesky, error)) (float64, []float64, error) {
	ch, err := factor(r)
	if err != nil {
		return 0, nil, err
	}
	sigma, err := ch.Solve(bem.RHS(m))
	if err != nil {
		return 0, nil, err
	}
	return 1 / bem.TotalCurrent(m, sigma), sigma, nil
}

// timeAssembly builds a fresh assembler under opt and times Matrix(),
// returning the minimum wall time over repeats and the last matrix.
func timeAssembly(m *grid.Mesh, c SoilCase, opt bem.Options, repeats int) (time.Duration, *linalg.SymMatrix, error) {
	var r *linalg.SymMatrix
	d, err := minDuration(repeats, func() (time.Duration, error) {
		asm, err := bem.New(m, c.Model, opt)
		if err != nil {
			return 0, err
		}
		t0 := time.Now()
		r, _, err = asm.Matrix()
		return time.Since(t0), err
	})
	return d, r, err
}

// runAssemblyCase measures one soil case at the given single-thread and
// parallel widths.
func runAssemblyCase(c SoilCase, q Quality, workers int) (AssemblyCaseBench, error) {
	mesh, _, err := core.BuildMesh(grid.Balaidos(), c.Model, core.Config{RodElements: c.RodElements})
	if err != nil {
		return AssemblyCaseBench{}, err
	}

	opt1 := q.bemOptions(1)
	opt1Flat := opt1
	opt1Flat.Kernel = bem.FlatKernel
	optN := q.bemOptions(workers)
	optNFlat := optN
	optNFlat.Kernel = bem.FlatKernel

	out := AssemblyCaseBench{Soil: c.Name, Elements: len(mesh.Elements)}

	// Single-thread assembly, both kernels. The matrices are kept: the
	// reference one feeds the factorization timings, the flat one the
	// accuracy check.
	refWall, refR, err := timeAssembly(mesh, c, opt1, q.Repeats)
	if err != nil {
		return out, err
	}
	flatWall, flatR, err := timeAssembly(mesh, c, opt1Flat, q.Repeats)
	if err != nil {
		return out, err
	}
	out.DoF = refR.Order()
	out.AssemblyRefMs = ms(refWall)
	out.AssemblyFlatMs = ms(flatWall)

	// Parallel assembly, both kernels.
	refParWall, _, err := timeAssembly(mesh, c, optN, q.Repeats)
	if err != nil {
		return out, err
	}
	flatParWall, _, err := timeAssembly(mesh, c, optNFlat, q.Repeats)
	if err != nil {
		return out, err
	}
	out.AssemblyRefParMs = ms(refParWall)
	out.AssemblyFlatParMs = ms(flatParWall)

	// Single-thread factorizations of the reference matrix. NewCholesky*
	// copy the input into the factor, so repeated timing is sound.
	factorRef, err := minDuration(q.Repeats, func() (time.Duration, error) {
		t0 := time.Now()
		_, err := linalg.NewCholesky(refR)
		return time.Since(t0), err
	})
	if err != nil {
		return out, err
	}
	factorBlk, err := minDuration(q.Repeats, func() (time.Duration, error) {
		t0 := time.Now()
		_, err := linalg.NewCholeskyBlocked(refR, linalg.FactorOpts{Workers: 1})
		return time.Since(t0), err
	})
	if err != nil {
		return out, err
	}
	factorMix, err := minDuration(q.Repeats, func() (time.Duration, error) {
		t0 := time.Now()
		_, err := linalg.NewCholeskyBlocked(refR, linalg.FactorOpts{Workers: 1, Mixed: true})
		return time.Since(t0), err
	})
	if err != nil {
		return out, err
	}
	out.FactorRefMs = ms(factorRef)
	out.FactorBlockedMs = ms(factorBlk)
	out.FactorMixedMs = ms(factorMix)

	out.CombinedRefMs = out.AssemblyRefMs + out.FactorRefMs
	out.CombinedFastMs = out.AssemblyFlatMs + out.FactorBlockedMs
	out.CombinedSpeedup = out.CombinedRefMs / out.CombinedFastMs

	// Accuracy contracts against the reference path.
	reqRef, sigRef, err := reqOf(mesh, refR, linalg.NewCholesky)
	if err != nil {
		return out, err
	}
	out.ReqReference = reqRef
	reqBlk, sigBlk, err := reqOf(mesh, refR, func(r *linalg.SymMatrix) (*linalg.Cholesky, error) {
		return linalg.NewCholeskyBlocked(r, linalg.FactorOpts{Workers: 1})
	})
	if err != nil {
		return out, err
	}
	//lint:ignore floatcmp bit-identity is the measured property: the blocked factor must reproduce the reference Req exactly
	out.BlockedBitIdentical = reqBlk == reqRef
	for i := range sigBlk {
		//lint:ignore floatcmp bit-identity is the measured property: every σ entry must match the reference solve exactly
		if sigBlk[i] != sigRef[i] {
			out.BlockedBitIdentical = false
		}
	}
	reqFlat, _, err := reqOf(mesh, flatR, linalg.NewCholesky)
	if err != nil {
		return out, err
	}
	out.MaxAbsDiffReqFlat = abs(reqFlat - reqRef)
	reqMix, _, err := reqOf(mesh, refR, func(r *linalg.SymMatrix) (*linalg.Cholesky, error) {
		return linalg.NewCholeskyBlocked(r, linalg.FactorOpts{Workers: 1, Mixed: true})
	})
	if err != nil {
		return out, err
	}
	out.MaxAbsDiffReqMixed = abs(reqMix - reqRef)
	return out, nil
}

// RunAssemblyBench measures the kernel and factorization variants on the
// Balaidos workload, soil cases C (headline) then B. workers ≤ 0 selects
// GOMAXPROCS for the parallel assembly rows (the single-thread rows always
// run at one worker).
func RunAssemblyBench(q Quality, workers int) (AssemblyBench, error) {
	q = q.withDefaults()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := AssemblyBench{Workers: workers}
	models := BalaidosModels()
	for _, c := range []SoilCase{models[2], models[1]} {
		cb, err := runAssemblyCase(c, q, workers)
		if err != nil {
			return out, fmt.Errorf("soil %s: %w", c.Name, err)
		}
		out.Cases = append(out.Cases, cb)
	}
	out.CombinedSpeedup = out.Cases[0].CombinedSpeedup
	return out, nil
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// AssemblyKernels prints the assembly/solve raw-speed benchmark and, when
// jsonPath is non-empty, writes the AssemblyBench record there as JSON
// (BENCH_assembly.json in the repo convention).
func AssemblyKernels(out io.Writer, q Quality, workers int, jsonPath string) (err error) {
	w, flush := buffered(out)
	defer flush(&err)

	ab, err := RunAssemblyBench(q, workers)
	if err != nil {
		return err
	}
	header(w, "Assembly/solve hot path — Balaidos, reference vs flat kernel + blocked Cholesky")
	for _, cb := range ab.Cases {
		fmt.Fprintf(w, "soil %s: %d elements, %d DoF\n", cb.Soil, cb.Elements, cb.DoF)
		fmt.Fprintf(w, "  assembly   1 thread: reference %9.1f ms   flat %9.1f ms  (%.2f×)\n",
			cb.AssemblyRefMs, cb.AssemblyFlatMs, cb.AssemblyRefMs/cb.AssemblyFlatMs)
		fmt.Fprintf(w, "  assembly %2d threads: reference %9.1f ms   flat %9.1f ms  (%.2f×)\n",
			ab.Workers, cb.AssemblyRefParMs, cb.AssemblyFlatParMs, cb.AssemblyRefParMs/cb.AssemblyFlatParMs)
		fmt.Fprintf(w, "  factor     1 thread: reference %9.2f ms   blocked %6.2f ms   mixed %6.2f ms\n",
			cb.FactorRefMs, cb.FactorBlockedMs, cb.FactorMixedMs)
		fmt.Fprintf(w, "  combined   1 thread: reference %9.1f ms   fast %9.1f ms  speed-up %.2f×\n",
			cb.CombinedRefMs, cb.CombinedFastMs, cb.CombinedSpeedup)
		fmt.Fprintf(w, "  Req %.6f Ω; blocked bit-identical %v; |ΔReq| flat %.3g Ω, mixed %.3g Ω\n",
			cb.ReqReference, cb.BlockedBitIdentical, cb.MaxAbsDiffReqFlat, cb.MaxAbsDiffReqMixed)
	}
	fmt.Fprintf(w, "headline combined speed-up (soil C, 1 thread): %.2f× (bar ≥ 2)\n", ab.CombinedSpeedup)
	if jsonPath == "" {
		return nil
	}
	if err := fsio.WriteFile(jsonPath, func(f io.Writer) error {
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		return enc.Encode(ab)
	}); err != nil {
		return err
	}
	fmt.Fprintln(w, "JSON written to", jsonPath)
	return nil
}
