package experiments

import (
	"fmt"
	"io"
	"time"

	"earthing/internal/bem"
	"earthing/internal/core"
	"earthing/internal/fdm"
	"earthing/internal/grid"
	"earthing/internal/linalg"
	"earthing/internal/soil"
)

// AblationAssembly compares the paper's dependency-breaking transformation
// (store all elemental matrices, assemble sequentially afterwards, §6.2)
// against assembling under a mutex inside the parallel loop.
func AblationAssembly(out io.Writer, q Quality, workers []int) (err error) {
	w, flush := buffered(out)
	defer flush(&err)

	q = q.withDefaults()
	m, err := grid.BarberaMesh()
	if err != nil {
		return err
	}
	model := BarberaTwoLayer()
	header(w, "Ablation — elemental assembly: store-then-assemble vs mutex (§6.2)")
	fmt.Fprintf(w, "%-22s %8s %14s\n", "mode", "workers", "matrix time")
	for _, mode := range []bem.AssemblyMode{bem.StoreThenAssemble, bem.MutexAssemble} {
		for _, p := range workers {
			opt := q.bemOptions(p)
			opt.Assembly = mode
			wall, err := minDuration(q.Repeats, func() (time.Duration, error) {
				d, _, err := matrixGenTime(m, model, opt)
				return d, err
			})
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-22s %8d %14v\n", mode, p, wall.Round(time.Millisecond))
		}
	}
	return nil
}

// SeriesTolPoint is one tolerance sweep sample.
type SeriesTolPoint struct {
	Tol  float64
	Req  float64
	Wall time.Duration
}

// RunAblationSeriesTol sweeps the kernel-series truncation tolerance and
// reports the accuracy/time trade-off that makes multilayer models so much
// more expensive than uniform ones (§4.3: series "numerically added up until
// a tolerance is fulfilled").
func RunAblationSeriesTol(tols []float64, workers int) ([]SeriesTolPoint, error) {
	var pts []SeriesTolPoint
	for _, tol := range tols {
		q := Quality{SeriesTol: tol, Repeats: 1}
		start := time.Now()
		res, err := AnalyzeBalaidos(BalaidosModels()[2], q, workers) // model C, worst convergence
		if err != nil {
			return nil, err
		}
		pts = append(pts, SeriesTolPoint{Tol: tol, Req: res.Req, Wall: time.Since(start)})
	}
	return pts, nil
}

// AblationSeriesTol prints the tolerance sweep.
func AblationSeriesTol(out io.Writer, workers int) (err error) {
	w, flush := buffered(out)
	defer flush(&err)

	pts, err := RunAblationSeriesTol([]float64{1e-2, 1e-3, 1e-4, 1e-5, 1e-6, 1e-7}, workers)
	if err != nil {
		return err
	}
	header(w, "Ablation — kernel series tolerance (Balaidos model C)")
	fmt.Fprintf(w, "%-10s %12s %14s\n", "tol", "Req (ohm)", "analysis time")
	for _, p := range pts {
		fmt.Fprintf(w, "%-10.0e %12.5f %14v\n", p.Tol, p.Req, p.Wall.Round(time.Millisecond))
	}
	return nil
}

// AblationSolver compares the direct Cholesky solve with the diagonal
// preconditioned CG the paper recommends (§4.3), on the Barberá system.
func AblationSolver(out io.Writer, q Quality) (err error) {
	w, flush := buffered(out)
	defer flush(&err)

	q = q.withDefaults()
	m, err := grid.BarberaMesh()
	if err != nil {
		return err
	}
	model := BarberaTwoLayer()
	a, err := bem.New(m, model, q.bemOptions(0))
	if err != nil {
		return err
	}
	r, _, err := a.Matrix()
	if err != nil {
		return err
	}
	nu := bem.RHS(m)

	header(w, "Ablation — linear solver (Barberá two-layer system, N = "+fmt.Sprint(r.Order())+")")
	start := time.Now()
	ch, err := linalg.NewCholesky(r)
	if err != nil {
		return err
	}
	xd, err := ch.Solve(nu)
	if err != nil {
		return err
	}
	dDirect := time.Since(start)

	start = time.Now()
	cg, err := linalg.SolveCG(r, nu, linalg.CGOptions{Tol: 1e-10})
	if err != nil {
		return err
	}
	dCG := time.Since(start)

	reqD := 1 / bem.TotalCurrent(m, xd)
	reqC := 1 / bem.TotalCurrent(m, cg.X)
	fmt.Fprintf(w, "cholesky: %12v  Req = %.6f ohm\n", dDirect, reqD)
	fmt.Fprintf(w, "pcg:      %12v  Req = %.6f ohm (%d iterations, residual %.1e)\n",
		dCG, reqC, cg.Iterations, cg.Residual)
	fmt.Fprintln(w, "(the paper: system resolution cost \"should never prevail\" over matrix generation)")
	return nil
}

// AblationThreeLayer exercises the paper's §4.2 extension: grounding
// analysis in a three-layer soil, comparing the closed-form "double series"
// image expansion (fast path, electrodes in the top layer) against the
// numeric Hankel-transform kernels.
func AblationThreeLayer(out io.Writer) (err error) {
	w, flush := buffered(out)
	defer flush(&err)

	g := grid.RectMesh(0, 0, 30, 30, 4, 4, 0.5, 0.006)
	gammas := []float64{0.004, 0.02, 0.008}
	thick := []float64{1.2, 2.0}

	header(w, "Ablation — three-layer soil: double-series images vs Hankel quadrature (§4.2)")
	run := func(model soil.Model, label string) (float64, time.Duration, error) {
		start := time.Now()
		res, err := core.Analyze(g, model, core.Config{
			GPR: 10_000,
			BEM: bem.Options{SeriesTol: 1e-7, MaxGroups: 200},
		})
		if err != nil {
			return 0, 0, err
		}
		d := time.Since(start)
		fmt.Fprintf(w, "%-28s Req = %.4f ohm   total %v\n", label, res.Req, d.Round(time.Millisecond))
		return res.Req, d, nil
	}

	ml, err := soil.NewMultiLayer(gammas, thick)
	if err != nil {
		return err
	}
	ml.Tol = 1e-7
	reqImg, tImg, err := run(ml, "images (double series)")
	if err != nil {
		return err
	}
	mlQ, err := soil.NewMultiLayer(gammas, thick)
	if err != nil {
		return err
	}
	mlQ.Tol = 1e-7
	reqQuad, tQuad, err := run(hideImages{mlQ}, "Hankel quadrature")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "relative Req difference: %.2e; speedup of the image path: %.1fx\n",
		2*abs(reqImg-reqQuad)/(reqImg+reqQuad), float64(tQuad)/float64(tImg))
	fmt.Fprintln(w, "(the paper: series kernels make multilayer models expensive; higher layer")
	fmt.Fprintln(w, " counts need double, triple, … series — regenerated here from the recursive")
	fmt.Fprintln(w, " reflection coefficient)")
	return nil
}

// hideImages forces the quadrature path by hiding the expansion.
type hideImages struct{ soil.Model }

func (h hideImages) ImageExpansion(src, obs, maxGroup int) ([]soil.Image, bool) {
	return nil, false
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// AblationGrading sweeps the lattice grading factor of a Barberá-sized
// triangle at fixed element count: practical plans compress spacings toward
// the perimeter (where leakage concentrates), and the sweep shows Req is
// almost insensitive to it — which pins the residual §5.1 offset on the
// unpublished outline rather than interior spacing (see EXPERIMENTS.md).
func AblationGrading(out io.Writer, q Quality) (err error) {
	w, flush := buffered(out)
	defer flush(&err)

	q = q.withDefaults()
	header(w, "Ablation — lattice grading (Barberá-sized triangle, uniform soil)")
	fmt.Fprintf(w, "%-8s %10s %12s\n", "beta", "elements", "Req (ohm)")
	for _, beta := range []float64{0, 0.2, 0.4, 0.6, 0.8} {
		g := grid.TriangleMeshGraded(89, 143, 16, 28, 0.8, 12.85e-3/2, beta)
		m, err := grid.Discretize(g, grid.Linear, 0)
		if err != nil {
			return err
		}
		res, err := core.AnalyzeMesh(m, BarberaUniform(), core.Config{
			GPR: 10_000, BEM: q.bemOptions(0),
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-8.1f %10d %12.4f\n", beta, len(m.Elements), res.Req)
	}
	fmt.Fprintln(w, "(paper value 0.3128; grading moves Req by <1%)")
	return nil
}

// BaselineFDM quantifies the paper's §3 argument against volume
// discretization: it solves the same grounding problem (a driven rod, then
// a small grid) with the BEM and with the finite-difference baseline, and
// reports unknown counts, times and the resistance each method computes.
// The FD lattice cannot represent the thin conductor radius, so its Req
// corresponds to an electrode of effective radius ≈ 0.3·h — the accuracy
// gap that only shrinks with (expensively) finer lattices.
func BaselineFDM(out io.Writer) (err error) {
	w, flush := buffered(out)
	defer flush(&err)

	header(w, "Baseline — BEM vs finite differences (the paper's §3 argument)")
	model := soil.NewUniform(0.01)

	cases := []struct {
		name string
		g    *grid.Grid
		box  fdm.Box
	}{
		{"rod 3 m", grid.SingleRod(0, 0, 0, 3, 0.0075),
			fdm.Box{X0: -12, Y0: -12, X1: 12, Y1: 12, Depth: 14, H: 0.5}},
		{"grid 20x20 m", grid.RectMesh(0, 0, 20, 20, 3, 3, 1, 0.0075),
			fdm.Box{X0: -20, Y0: -20, X1: 40, Y1: 40, Depth: 30, H: 1.0}},
	}
	fmt.Fprintf(w, "%-14s %10s %12s %12s %14s %12s\n",
		"problem", "method", "unknowns", "Req (ohm)", "time", "CG iters")
	for _, c := range cases {
		start := time.Now()
		res, err := core.Analyze(c.g, model, core.Config{MaxElemLen: 1})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-14s %10s %12d %12.3f %14v %12d\n",
			c.name, "BEM", res.Mesh.NumDoF, res.Req,
			time.Since(start).Round(time.Millisecond), res.CG.Iterations)

		start = time.Now()
		s, err := fdm.New(c.g, model, c.box)
		if err != nil {
			return err
		}
		fr, err := s.Solve(1e-7, 0)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-14s %10s %12d %12.3f %14v %12d\n",
			c.name, "FD", fr.Nodes, fr.Req,
			time.Since(start).Round(time.Millisecond), fr.Iterations)
	}
	fmt.Fprintln(w, "\nthe FD lattice needs 10³–10⁴× the unknowns and still reads Req low (its")
	fmt.Fprintln(w, "Dirichlet cells act as a conductor of radius ≈0.3·h, not the real 7.5 mm);")
	fmt.Fprintln(w, "resolving the true radius would need h ≈ centimetres — the \"completely out")
	fmt.Fprintln(w, "of range computing effort\" that motivates the boundary element method.")
	return nil
}

// ConvergencePoint is one mesh-refinement sample.
type ConvergencePoint struct {
	Kind     grid.ElementKind
	Elements int
	Req      float64
}

// RunAblationElements refines a 30×30 m test grid and reports Req for
// constant and linear element families — the discretization study behind
// the choice of Galerkin linear elements (§4.2).
func RunAblationElements(maxLens []float64) ([]ConvergencePoint, error) {
	g := grid.RectMesh(0, 0, 30, 30, 4, 4, 0.8, 0.006)
	model := soil.NewTwoLayer(0.005, 0.016, 1.0)
	var pts []ConvergencePoint
	for _, kind := range []grid.ElementKind{grid.Constant, grid.Linear} {
		for _, ml := range maxLens {
			res, err := core.Analyze(g, model, core.Config{
				ElementKind: kind, MaxElemLen: ml,
			})
			if err != nil {
				return nil, err
			}
			pts = append(pts, ConvergencePoint{Kind: kind, Elements: len(res.Mesh.Elements), Req: res.Req})
		}
	}
	return pts, nil
}

// AblationElements prints the element-family convergence study.
func AblationElements(out io.Writer) (err error) {
	w, flush := buffered(out)
	defer flush(&err)

	pts, err := RunAblationElements([]float64{10, 5, 2.5, 1.25})
	if err != nil {
		return err
	}
	header(w, "Ablation — element family convergence (30×30 m grid, two-layer soil)")
	fmt.Fprintf(w, "%-10s %10s %12s\n", "kind", "elements", "Req (ohm)")
	for _, p := range pts {
		fmt.Fprintf(w, "%-10s %10d %12.5f\n", p.Kind, p.Elements, p.Req)
	}
	return nil
}
