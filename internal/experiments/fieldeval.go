package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"earthing/internal/bem"
	"earthing/internal/fsio"
	"earthing/internal/geom"
)

// FieldEvalBench records the batched field-evaluation benchmark on the
// Figure 5.4 Balaidos raster (soil model B): the legacy per-point
// Assembler.Potential path against the precomputed FieldEvaluator, single
// thread and parallel. All ns/point figures are minima over Quality.Repeats.
type FieldEvalBench struct {
	// Model names the soil case ("B" — the two-layer Balaidos model).
	Model string `json:"model"`
	// NX, NY, Points describe the raster (Points = NX·NY).
	NX     int `json:"nx"`
	NY     int `json:"ny"`
	Points int `json:"points"`
	// Elements is the BEM element count of the discretized grid.
	Elements int `json:"elements"`

	// LegacyNsPerPoint is the per-point cost of Assembler.Potential.
	LegacyNsPerPoint float64 `json:"legacy_ns_per_point"`
	// BatchNsPerPoint is the single-thread per-point cost of the evaluator.
	BatchNsPerPoint float64 `json:"batch_ns_per_point"`
	// SpeedupSingle = LegacyNsPerPoint / BatchNsPerPoint — the precompute
	// win at equal parallelism (acceptance bar: ≥ 3).
	SpeedupSingle float64 `json:"speedup_single_thread"`

	// Workers is the parallel width of the parallel batch run.
	Workers int `json:"workers"`
	// ParallelNsPerPoint is the wall per-point cost of the parallel batch.
	ParallelNsPerPoint float64 `json:"parallel_ns_per_point"`
	// PointsPerSec is the parallel batch throughput.
	PointsPerSec float64 `json:"points_per_sec"`
	// PredictedSpeedup is the load-balance-limited Σbusy/max(busy) of the
	// parallel run (the paper's predicted-speed-up column).
	PredictedSpeedup float64 `json:"predicted_speedup"`
	// MeasuredSpeedup = BatchNsPerPoint / ParallelNsPerPoint.
	MeasuredSpeedup float64 `json:"measured_speedup"`
	// TotalSpeedup = LegacyNsPerPoint / ParallelNsPerPoint — precompute and
	// parallelism combined.
	TotalSpeedup float64 `json:"total_speedup"`

	// MaxAbsDiff is max_i |V_legacy(x_i) − V_batch(x_i)| in raster units —
	// the identical-output check (acceptance bar: ≤ 1e-10).
	MaxAbsDiff float64 `json:"max_abs_diff"`
}

// RunFieldEval measures the field-evaluation engine on the Figure 5.4 raster
// geometry: nx×ny surface points over the Balaidos bounds plus the figure's
// 20 m margin (defaults 56×44), soil model B, scale GPR/10⁴ like the paper's
// contour labels. workers ≤ 0 selects GOMAXPROCS for the parallel run.
func RunFieldEval(q Quality, workers, nx, ny int) (FieldEvalBench, error) {
	q = q.withDefaults()
	if nx <= 0 {
		nx = 56
	}
	if ny <= 0 {
		ny = 44
	}
	c := BalaidosModels()[1] // model B: the two-layer case of Figure 5.4
	res, err := AnalyzeBalaidos(c, q, workers)
	if err != nil {
		return FieldEvalBench{}, err
	}
	a := res.Assembler()
	sigma := res.Sigma
	scale := res.GPR / 10_000

	const margin = 20.0 // the Figure 5.2/5.4 raster margin
	b := res.Mesh.Bounds()
	x0, y0 := b.Min.X-margin, b.Min.Y-margin
	x1, y1 := b.Max.X+margin, b.Max.Y+margin
	pts := make([]geom.Vec3, nx*ny)
	for j := 0; j < ny; j++ {
		y := y0 + float64(j)*(y1-y0)/float64(ny-1)
		for i := 0; i < nx; i++ {
			pts[j*nx+i] = geom.V(x0+float64(i)*(x1-x0)/float64(nx-1), y, 0)
		}
	}

	out := FieldEvalBench{
		Model: c.Name, NX: nx, NY: ny, Points: len(pts),
		Elements: len(res.Mesh.Elements),
	}

	legacy := make([]float64, len(pts))
	legacyWall, err := minDuration(q.Repeats, func() (time.Duration, error) {
		t0 := time.Now()
		for i, x := range pts {
			legacy[i] = scale * a.Potential(x, sigma)
		}
		return time.Since(t0), nil
	})
	if err != nil {
		return out, err
	}

	fe := a.Evaluator()
	batch := make([]float64, len(pts))
	fe.PotentialAt(pts[0], sigma) // build the plan outside the timings
	serialWall, err := minDuration(q.Repeats, func() (time.Duration, error) {
		st := fe.PotentialBatch(pts, sigma, scale, batch, bem.BatchOptions{Workers: 1})
		return st.Wall, nil
	})
	if err != nil {
		return out, err
	}

	var parStats bem.BatchStats
	parWall, err := minDuration(q.Repeats, func() (time.Duration, error) {
		st := fe.PotentialBatch(pts, sigma, scale, batch, bem.BatchOptions{Workers: workers})
		parStats = st
		return st.Wall, nil
	})
	if err != nil {
		return out, err
	}

	for i := range legacy {
		if d := legacy[i] - batch[i]; d > out.MaxAbsDiff {
			out.MaxAbsDiff = d
		} else if -d > out.MaxAbsDiff {
			out.MaxAbsDiff = -d
		}
	}

	n := float64(len(pts))
	out.LegacyNsPerPoint = float64(legacyWall.Nanoseconds()) / n
	out.BatchNsPerPoint = float64(serialWall.Nanoseconds()) / n
	out.SpeedupSingle = out.LegacyNsPerPoint / out.BatchNsPerPoint
	out.Workers = parStats.Sched.Workers
	out.ParallelNsPerPoint = float64(parWall.Nanoseconds()) / n
	out.PointsPerSec = n / parWall.Seconds()
	out.PredictedSpeedup = parStats.PredictedSpeedup()
	out.MeasuredSpeedup = out.BatchNsPerPoint / out.ParallelNsPerPoint
	out.TotalSpeedup = out.LegacyNsPerPoint / out.ParallelNsPerPoint
	return out, nil
}

// FieldEval prints the field-evaluation benchmark and, when jsonPath is
// non-empty, writes the FieldEvalBench record there as JSON
// (BENCH_field_eval.json in the repo convention).
func FieldEval(out io.Writer, q Quality, workers, nx, ny int, jsonPath string) (err error) {
	w, flush := buffered(out)
	defer flush(&err)

	fb, err := RunFieldEval(q, workers, nx, ny)
	if err != nil {
		return err
	}
	header(w, "Field evaluation — Fig 5.4 Balaidos raster, legacy vs batched engine")
	fmt.Fprintf(w, "model %s, %d×%d = %d points, %d elements\n",
		fb.Model, fb.NX, fb.NY, fb.Points, fb.Elements)
	fmt.Fprintf(w, "legacy per-point path:   %10.0f ns/point\n", fb.LegacyNsPerPoint)
	fmt.Fprintf(w, "batch engine (1 thread): %10.0f ns/point   (speed-up %.2f×)\n",
		fb.BatchNsPerPoint, fb.SpeedupSingle)
	fmt.Fprintf(w, "batch engine (%d workers): %8.0f ns/point   (%.0f points/s, measured %.2f×, predicted %.2f×)\n",
		fb.Workers, fb.ParallelNsPerPoint, fb.PointsPerSec, fb.MeasuredSpeedup, fb.PredictedSpeedup)
	fmt.Fprintf(w, "max |ΔV| legacy vs batch: %.3g (×10 kV units)\n", fb.MaxAbsDiff)
	if jsonPath == "" {
		return nil
	}
	if err := fsio.WriteFile(jsonPath, func(f io.Writer) error {
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		return enc.Encode(fb)
	}); err != nil {
		return err
	}
	fmt.Fprintln(w, "JSON written to", jsonPath)
	return nil
}
