package quad

import (
	"errors"
	"math"
)

// ErrNoConvergence is returned when an iterative integrator exhausts its
// interval budget before meeting the requested tolerance.
var ErrNoConvergence = errors.New("quad: integral did not converge within the interval budget")

// SemiInfinite integrates g over [0, ∞) where g oscillates with known sign
// changes (or natural break points) at cut(1) < cut(2) < … . The integral is
// evaluated interval by interval with an n-point Gauss rule, and the sequence
// of partial sums is accelerated with a Shanks ε-table, which converges even
// for the slowly decaying alternating tails produced by Bessel kernels.
//
// cut(k) must be strictly increasing with cut(0) ≡ 0 implied. The method
// stops when two successive accelerated estimates agree within tol (absolute
// + relative), or fails with ErrNoConvergence after maxIntervals intervals.
func SemiInfinite(g func(float64) float64, cut func(k int) float64, tol float64, maxIntervals int) (float64, error) {
	rule := GaussLegendre(16)
	var partial KahanSum
	var table ShanksTable
	prev := math.NaN()
	lo := 0.0
	smallRaw := 0 // consecutive negligible raw contributions
	for k := 1; k <= maxIntervals; k++ {
		hi := cut(k)
		if !(hi > lo) {
			return 0, errors.New("quad: cut points must be strictly increasing")
		}
		contrib := rule.Integrate(lo, hi, g)
		partial.Add(contrib)
		table.Append(partial.Sum())
		est := table.Estimate()
		// Fast-decaying (effectively non-oscillatory) integrands converge in
		// the raw partial sums before the ε-table stabilises.
		if math.Abs(contrib) <= tol*(1+math.Abs(partial.Sum())) {
			smallRaw++
			if smallRaw >= 2 {
				return partial.Sum(), nil
			}
		} else {
			smallRaw = 0
		}
		if k >= 3 && !math.IsInf(est, 0) && !math.IsNaN(est) {
			if d := math.Abs(est - prev); d <= tol*(1+math.Abs(est)) {
				return est, nil
			}
		}
		prev = est
		lo = hi
	}
	return prev, ErrNoConvergence
}

// BesselJ0Cuts returns a cut-point generator for integrands containing
// J0(λr): the k-th cut is approximately the k-th zero of J0(λr), i.e.
// j_{0,k}/r, using the McMahon asymptotic zero (k−1/4)π. For r = 0 the
// integrand does not oscillate and fixed geometric cuts of scale `scale` are
// produced instead.
func BesselJ0Cuts(r, scale float64) func(k int) float64 {
	if r <= 0 {
		return func(k int) float64 { return scale * float64(k) }
	}
	return func(k int) float64 {
		return (float64(k) - 0.25) * math.Pi / r
	}
}
