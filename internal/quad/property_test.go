package quad

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickGaussMatchesAdaptive: on random smooth integrands (sums of a few
// sinusoids and polynomials over random intervals), a 24-point Gauss rule
// and the adaptive Simpson integrator must agree tightly.
func TestQuickGaussMatchesAdaptive(t *testing.T) {
	rule := GaussLegendre(24)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nTerms := 1 + r.Intn(4)
		amp := make([]float64, nTerms)
		freq := make([]float64, nTerms)
		for i := range amp {
			amp[i] = r.NormFloat64()
			freq[i] = r.Float64() * 3
		}
		c2 := r.NormFloat64()
		g := func(x float64) float64 {
			s := c2 * x * x
			for i := range amp {
				s += amp[i] * math.Sin(freq[i]*x)
			}
			return s
		}
		a := r.Float64()*4 - 2
		b := a + 0.5 + r.Float64()*3
		gauss := rule.Integrate(a, b, g)
		adapt := AdaptiveSimpson(g, a, b, 1e-12, 45)
		return math.Abs(gauss-adapt) <= 1e-8*(1+math.Abs(adapt))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickGaussLinearity: integration is linear in the integrand.
func TestQuickGaussLinearity(t *testing.T) {
	rule := GaussLegendre(10)
	f := func(c1, c2 float64, seed int64) bool {
		c1, c2 = math.Mod(c1, 100), math.Mod(c2, 100)
		if math.IsNaN(c1) || math.IsNaN(c2) {
			return true
		}
		r := rand.New(rand.NewSource(seed))
		w := r.Float64()*2 + 0.1
		g1 := func(x float64) float64 { return math.Exp(-x * x) }
		g2 := math.Cos
		lhs := rule.Integrate(0, w, func(x float64) float64 { return c1*g1(x) + c2*g2(x) })
		rhs := c1*rule.Integrate(0, w, g1) + c2*rule.Integrate(0, w, g2)
		return math.Abs(lhs-rhs) <= 1e-9*(1+math.Abs(rhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestQuickIntervalAdditivity: ∫[a,c] = ∫[a,b] + ∫[b,c] for the adaptive
// integrator.
func TestQuickIntervalAdditivity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := r.Float64() * 2
		b := a + r.Float64()*2
		c := b + r.Float64()*2
		g := func(x float64) float64 { return math.Sin(3*x) / (1 + x*x) }
		whole := AdaptiveSimpson(g, a, c, 1e-12, 45)
		parts := AdaptiveSimpson(g, a, b, 1e-12, 45) + AdaptiveSimpson(g, b, c, 1e-12, 45)
		return math.Abs(whole-parts) <= 1e-9*(1+math.Abs(whole))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestQuickKahanMatchesBigSum: Kahan summation of shuffled values equals the
// sorted-order naive sum to near machine precision.
func TestQuickKahanPermutationInvariance(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 100 + r.Intn(400)
		vals := make([]float64, n)
		for i := range vals {
			// Wildly varying magnitudes to stress cancellation.
			vals[i] = r.NormFloat64() * math.Pow(10, float64(r.Intn(12)-6))
		}
		var k1 KahanSum
		for _, v := range vals {
			k1.Add(v)
		}
		r.Shuffle(n, func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
		var k2 KahanSum
		for _, v := range vals {
			k2.Add(v)
		}
		scale := 0.0
		for _, v := range vals {
			scale += math.Abs(v)
		}
		return math.Abs(k1.Sum()-k2.Sum()) <= 1e-12*(1+scale)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
