package quad

import (
	"math"
	"testing"
)

func TestGaussLegendreExactForPolynomials(t *testing.T) {
	// An n-point rule integrates polynomials up to degree 2n−1 exactly.
	for n := 1; n <= 20; n++ {
		r := GaussLegendre(n)
		for deg := 0; deg <= 2*n-1; deg++ {
			got := r.Integrate(-1, 1, func(x float64) float64 { return math.Pow(x, float64(deg)) })
			want := 0.0
			if deg%2 == 0 {
				want = 2 / float64(deg+1)
			}
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("n=%d deg=%d: got %v want %v", n, deg, got, want)
			}
		}
	}
}

func TestGaussLegendreWeights(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 16, 32, 64, 101} {
		r := GaussLegendre(n)
		if r.Len() != n {
			t.Fatalf("n=%d: Len=%d", n, r.Len())
		}
		var sum float64
		for i, w := range r.W {
			if w <= 0 {
				t.Fatalf("n=%d: non-positive weight %v", n, w)
			}
			if r.X[i] < -1 || r.X[i] > 1 {
				t.Fatalf("n=%d: node %v outside [-1,1]", n, r.X[i])
			}
			if i > 0 && r.X[i] <= r.X[i-1] {
				t.Fatalf("n=%d: nodes not increasing", n)
			}
			sum += w
		}
		if math.Abs(sum-2) > 1e-12 {
			t.Fatalf("n=%d: weights sum to %v, want 2", n, sum)
		}
		// Symmetry of nodes and weights.
		for i := range r.X {
			j := n - 1 - i
			if math.Abs(r.X[i]+r.X[j]) > 1e-13 || math.Abs(r.W[i]-r.W[j]) > 1e-13 {
				t.Fatalf("n=%d: rule not symmetric at %d", n, i)
			}
		}
	}
}

func TestGaussLegendreKnownValues(t *testing.T) {
	// 2-point rule: nodes ±1/√3, weights 1.
	r := GaussLegendre(2)
	if math.Abs(r.X[1]-1/math.Sqrt(3)) > 1e-14 || math.Abs(r.W[0]-1) > 1e-14 {
		t.Errorf("2-point rule wrong: %+v", r)
	}
	// 3-point rule: nodes 0, ±√(3/5); weights 8/9, 5/9.
	r = GaussLegendre(3)
	if math.Abs(r.X[2]-math.Sqrt(0.6)) > 1e-14 || math.Abs(r.W[1]-8.0/9) > 1e-14 || math.Abs(r.W[0]-5.0/9) > 1e-14 {
		t.Errorf("3-point rule wrong: %+v", r)
	}
}

func TestGaussIntegrateTranscendental(t *testing.T) {
	r := GaussLegendre(24)
	got := r.Integrate(0, math.Pi, math.Sin)
	if math.Abs(got-2) > 1e-12 {
		t.Errorf("∫sin over [0,π] = %v", got)
	}
	got = r.Integrate(1, 2, func(x float64) float64 { return 1 / x })
	if math.Abs(got-math.Ln2) > 1e-12 {
		t.Errorf("∫1/x over [1,2] = %v", got)
	}
}

func TestRuleNodesMapping(t *testing.T) {
	r := GaussLegendre(5)
	x, w := r.Nodes(2, 6)
	var sum float64
	for i := range x {
		if x[i] < 2 || x[i] > 6 {
			t.Fatalf("node %v outside [2,6]", x[i])
		}
		sum += w[i]
	}
	if math.Abs(sum-4) > 1e-12 {
		t.Errorf("mapped weights sum to %v, want 4", sum)
	}
}

func TestGaussLegendrePanicsOnBadOrder(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for n=0")
		}
	}()
	GaussLegendre(0)
}

func TestAdaptiveSimpson(t *testing.T) {
	cases := []struct {
		name string
		f    func(float64) float64
		a, b float64
		want float64
	}{
		{"poly", func(x float64) float64 { return x * x * x }, 0, 2, 4},
		{"exp", math.Exp, 0, 1, math.E - 1},
		{"peak", func(x float64) float64 { return 1 / (1e-4 + x*x) }, -1, 1, 2 / 1e-2 * math.Atan(1/1e-2)},
		{"sqrt-singular", math.Sqrt, 0, 1, 2.0 / 3},
	}
	for _, c := range cases {
		got := AdaptiveSimpson(c.f, c.a, c.b, 1e-10, 50)
		if math.Abs(got-c.want) > 1e-7*(1+math.Abs(c.want)) {
			t.Errorf("%s: got %v want %v", c.name, got, c.want)
		}
	}
}

func TestKahanSum(t *testing.T) {
	// Summing 1 + many tiny values in float32-hostile order: Kahan keeps
	// full double precision where naive summation drifts.
	var k KahanSum
	k.Add(1)
	n := 10_000_000
	tiny := 1e-16
	for i := 0; i < n; i++ {
		k.Add(tiny)
	}
	want := 1 + float64(n)*tiny
	if math.Abs(k.Sum()-want) > 1e-12 {
		t.Errorf("Kahan sum = %.17g want %.17g", k.Sum(), want)
	}
	var naive float64 = 1
	for i := 0; i < n; i++ {
		naive += tiny
	}
	if math.Abs(naive-want) < math.Abs(k.Sum()-want) {
		t.Error("Kahan summation not better than naive on the designed case")
	}
	k.Reset()
	if k.Sum() != 0 {
		t.Error("Reset did not clear sum")
	}
}

func TestShanksAcceleratesAlternatingSeries(t *testing.T) {
	// π = 4·Σ (−1)^k/(2k+1): partial sums converge like 1/n; Shanks should
	// reach ~1e-8 with a handful of terms.
	var table ShanksTable
	var s float64
	for k := 0; k < 14; k++ {
		s += 4 * math.Pow(-1, float64(k)) / float64(2*k+1)
		table.Append(s)
	}
	if got := table.Estimate(); math.Abs(got-math.Pi) > 1e-7 {
		t.Errorf("Shanks estimate %v, |err| = %v", got, math.Abs(got-math.Pi))
	}
	if math.Abs(s-math.Pi) < 1e-7 {
		t.Error("test is vacuous: raw partial sum already converged")
	}
	if table.Len() != 14 {
		t.Errorf("Len = %d", table.Len())
	}
}

func TestSemiInfiniteExponential(t *testing.T) {
	// ∫0∞ e^{−λ} dλ = 1, with geometric cuts.
	got, err := SemiInfinite(func(l float64) float64 { return math.Exp(-l) },
		func(k int) float64 { return 2 * float64(k) }, 1e-12, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-10 {
		t.Errorf("got %v want 1", got)
	}
}

func TestSemiInfiniteBesselLipschitz(t *testing.T) {
	// Weber–Lipschitz integral: ∫0∞ e^{−aλ} J0(λr) dλ = 1/√(a²+r²).
	for _, c := range []struct{ a, r float64 }{{1, 1}, {0.5, 2}, {2, 0.3}, {0.1, 5}} {
		g := func(l float64) float64 { return math.Exp(-c.a*l) * math.J0(l*c.r) }
		got, err := SemiInfinite(g, BesselJ0Cuts(c.r, 1), 1e-11, 200)
		if err != nil {
			t.Fatalf("a=%v r=%v: %v", c.a, c.r, err)
		}
		want := 1 / math.Hypot(c.a, c.r)
		if math.Abs(got-want) > 1e-8*(1+want) {
			t.Errorf("a=%v r=%v: got %v want %v", c.a, c.r, got, want)
		}
	}
}

func TestSemiInfiniteNoConvergence(t *testing.T) {
	// A non-decaying integrand must report failure, not hang or lie.
	_, err := SemiInfinite(func(l float64) float64 { return 1 },
		func(k int) float64 { return float64(k) }, 1e-12, 10)
	if err == nil {
		t.Error("expected error for divergent integral")
	}
}

func TestBesselJ0CutsIncreasing(t *testing.T) {
	cut := BesselJ0Cuts(3.7, 1)
	prev := 0.0
	for k := 1; k < 50; k++ {
		c := cut(k)
		if c <= prev {
			t.Fatalf("cuts not increasing at k=%d", k)
		}
		// Each cut should be near a zero of J0(λr).
		if k > 1 && math.Abs(math.J0(c*3.7)) > 0.06 {
			t.Fatalf("cut %d not near a J0 zero: J0=%v", k, math.J0(c*3.7))
		}
		prev = c
	}
	// r=0 fallback.
	cut0 := BesselJ0Cuts(0, 2.5)
	if cut0(2) != 5 {
		t.Errorf("r=0 cuts wrong: %v", cut0(2))
	}
}

func BenchmarkGaussLegendreConstruction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		computeGaussLegendre(64)
	}
}

func BenchmarkRuleIntegrate(b *testing.B) {
	r := GaussLegendre(16)
	f := func(x float64) float64 { return math.Exp(-x * x) }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Integrate(0, 3, f)
	}
}
