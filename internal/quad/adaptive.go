package quad

import "math"

// AdaptiveSimpson integrates f over [a, b] by recursive Simpson bisection
// with the Richardson error estimate |S2 − S1|/15 ≤ tol. maxDepth bounds the
// recursion so that non-integrable inputs terminate; 50 is a safe default.
func AdaptiveSimpson(f func(float64) float64, a, b, tol float64, maxDepth int) float64 {
	fa, fb := f(a), f(b)
	m := 0.5 * (a + b)
	fm := f(m)
	whole := simpson(a, b, fa, fm, fb)
	return adaptiveAux(f, a, b, fa, fm, fb, whole, tol, maxDepth)
}

func simpson(a, b, fa, fm, fb float64) float64 {
	return (b - a) / 6 * (fa + 4*fm + fb)
}

func adaptiveAux(f func(float64) float64, a, b, fa, fm, fb, whole, tol float64, depth int) float64 {
	m := 0.5 * (a + b)
	lm := 0.5 * (a + m)
	rm := 0.5 * (m + b)
	flm, frm := f(lm), f(rm)
	left := simpson(a, m, fa, flm, fm)
	right := simpson(m, b, fm, frm, fb)
	if depth <= 0 {
		return left + right
	}
	if err := left + right - whole; math.Abs(err) <= 15*tol {
		return left + right + err/15
	}
	return adaptiveAux(f, a, m, fa, flm, fm, left, tol/2, depth-1) +
		adaptiveAux(f, m, b, fm, frm, fb, right, tol/2, depth-1)
}

// KahanSum accumulates float64 values with compensated (Kahan) summation.
// It is used when adding the long, slowly decaying image series of layered
// soil kernels, where naive accumulation loses precision. The zero value is
// an empty sum ready for use.
type KahanSum struct {
	sum, c float64
}

// Add accumulates x.
func (k *KahanSum) Add(x float64) {
	y := x - k.c
	t := k.sum + y
	k.c = (t - k.sum) - y
	k.sum = t
}

// Sum returns the accumulated total.
func (k *KahanSum) Sum() float64 { return k.sum }

// Reset clears the accumulator.
func (k *KahanSum) Reset() { k.sum, k.c = 0, 0 }

// ShanksTable performs iterated Shanks extrapolation via Wynn's ε-algorithm
// on the partial sums of an alternating or geometric-tail series. Feed
// partial sums with Append; Estimate returns the current best extrapolated
// limit. It is used to accelerate the oscillatory Hankel-transform interval
// series in multilayer soil models.
//
// The implementation is the standard in-place diagonal update: after n calls
// to Append, e[j] holds the ε-table diagonal and the limit estimate is
// e[n mod 2].
type ShanksTable struct {
	e   []float64
	n   int
	est float64
}

// Append adds the next partial sum s_n and updates the ε-table diagonal.
func (t *ShanksTable) Append(s float64) {
	t.e = append(t.e, s)
	n := len(t.e) - 1
	if n == 0 {
		t.est = s
		t.n = 1
		return
	}
	aux2 := 0.0
	for j := n; j >= 1; j-- {
		aux1 := aux2
		aux2 = t.e[j-1]
		diff := t.e[j] - aux2
		if math.Abs(diff) <= 1e-300 {
			// Stagnated: the sequence has converged at this level.
			t.e[j-1] = t.e[j]
		} else {
			t.e[j-1] = aux1 + 1/diff
		}
	}
	t.est = t.e[n%2]
	t.n++
}

// Estimate returns the current best extrapolated limit (NaN before the first
// Append).
func (t *ShanksTable) Estimate() float64 {
	if t.n == 0 {
		return math.NaN()
	}
	return t.est
}

// Len returns the number of partial sums appended.
func (t *ShanksTable) Len() int { return t.n }
