// Package quad provides the numerical integration substrate of the solver:
// Gauss–Legendre rules of arbitrary order, an adaptive Simpson integrator,
// and a semi-infinite oscillatory integrator used for Hankel transforms in
// multilayer soil models.
package quad

import (
	"fmt"
	"math"
	"sync"
)

// Rule is a quadrature rule on the reference interval [-1, 1]:
// ∫_{-1}^{1} f(x) dx ≈ Σ W[i]·f(X[i]).
type Rule struct {
	X, W []float64
}

var (
	ruleMu    sync.Mutex
	ruleCache = map[int]Rule{}
)

// GaussLegendre returns the n-point Gauss–Legendre rule on [-1, 1]. Nodes are
// the roots of the Legendre polynomial P_n, located by Newton iteration from
// the Tricomi asymptotic initial guess; weights are 2/((1−x²)·P′_n(x)²).
// Rules are cached, so repeated calls are cheap. n must be ≥ 1.
func GaussLegendre(n int) Rule {
	if n < 1 {
		panic(fmt.Sprintf("quad: GaussLegendre order %d < 1", n))
	}
	ruleMu.Lock()
	defer ruleMu.Unlock()
	if r, ok := ruleCache[n]; ok {
		return r
	}
	r := computeGaussLegendre(n)
	ruleCache[n] = r
	return r
}

func computeGaussLegendre(n int) Rule {
	x := make([]float64, n)
	w := make([]float64, n)
	// Roots come in ± pairs; compute the non-negative half.
	m := (n + 1) / 2
	for i := 0; i < m; i++ {
		// Initial guess (Abramowitz & Stegun 22.16.6 style).
		z := math.Cos(math.Pi * (float64(i) + 0.75) / (float64(n) + 0.5))
		var pp float64
		for iter := 0; iter < 100; iter++ {
			p, dp := legendre(n, z)
			pp = dp
			dz := p / dp
			z -= dz
			if math.Abs(dz) < 1e-15 {
				break
			}
		}
		// Final polish of the derivative at the converged node.
		_, pp = legendre(n, z)
		x[i] = -z
		x[n-1-i] = z
		wi := 2 / ((1 - z*z) * pp * pp)
		w[i] = wi
		w[n-1-i] = wi
	}
	if n%2 == 1 {
		// Center node is exactly zero.
		x[n/2] = 0
		_, pp := legendre(n, 0)
		w[n/2] = 2 / (pp * pp)
	}
	return Rule{X: x, W: w}
}

// legendre evaluates the Legendre polynomial P_n and its derivative at z via
// the three-term recurrence.
func legendre(n int, z float64) (p, dp float64) {
	p0, p1 := 1.0, z
	if n == 0 {
		return 1, 0
	}
	for k := 2; k <= n; k++ {
		p0, p1 = p1, ((2*float64(k)-1)*z*p1-(float64(k)-1)*p0)/float64(k)
	}
	// P'_n(z) = n (z P_n − P_{n−1}) / (z² − 1); at z=±1 use n(n+1)/2 limit.
	if d := z*z - 1; math.Abs(d) > 1e-14 {
		dp = float64(n) * (z*p1 - p0) / d
	} else {
		dp = math.Copysign(float64(n)*float64(n+1)/2, math.Pow(z, float64(n+1)))
	}
	return p1, dp
}

// Integrate applies the rule to f over [a, b].
func (r Rule) Integrate(a, b float64, f func(float64) float64) float64 {
	c := 0.5 * (a + b)
	h := 0.5 * (b - a)
	var sum float64
	for i, xi := range r.X {
		sum += r.W[i] * f(c+h*xi)
	}
	return h * sum
}

// Nodes returns the rule's nodes and weights mapped to [a, b]. The returned
// slices are freshly allocated.
func (r Rule) Nodes(a, b float64) (x, w []float64) {
	c := 0.5 * (a + b)
	h := 0.5 * (b - a)
	x = make([]float64, len(r.X))
	w = make([]float64, len(r.W))
	for i := range r.X {
		x[i] = c + h*r.X[i]
		w[i] = h * r.W[i]
	}
	return x, w
}

// Len returns the number of points in the rule.
func (r Rule) Len() int { return len(r.X) }
