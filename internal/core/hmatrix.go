package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"earthing/internal/bem"
	"earthing/internal/faultinject"
	"earthing/internal/hmatrix"
	"earthing/internal/linalg"
	"earthing/internal/soil"
)

// HMatrixConfig tunes the compressed solver tier (Config.Solver =
// SolverHMatrix). The zero value selects the defaults of hmatrix.Params
// (ε = 1e-6, η = 2, leaf 64, rank cap 96) plus a 2000-DoF dense fallback
// threshold.
type HMatrixConfig struct {
	// Eps is the relative block tolerance of the ACA compression. The
	// engineering outputs track it: the differential suite pins |ΔReq|/Req
	// within 10·Eps of the dense reference.
	Eps float64
	// Eta is the admissibility parameter (min diam ≤ η·dist).
	Eta float64
	// LeafSize is the cluster-tree leaf capacity.
	LeafSize int
	// MaxRank caps the per-block ACA rank.
	MaxRank int
	// DenseFallbackN gates the graceful degradation of the compressed tier:
	// when the build or the iterative solve fails on a system of order
	// ≤ DenseFallbackN, the engine re-runs the scenario through the dense
	// PCG path and appends a Result warning instead of failing the analysis.
	// 0 selects the default (2000); negative disables the fallback, so every
	// compressed failure surfaces as a typed error — which is what the chaos
	// suites assert.
	DenseFallbackN int
}

// defaultDenseFallbackN bounds the systems worth re-running dense after a
// compressed failure: at 2000 DoF the dense path costs a few seconds, above
// it the quadratic assembly defeats the point of the compressed tier.
const defaultDenseFallbackN = 2000

// hmatrixFallbackAllowed reports whether a failed compressed run of order n
// may degrade to the dense path.
func hmatrixFallbackAllowed(cfg Config, n int) bool {
	limit := cfg.HMatrix.DenseFallbackN
	if limit == 0 {
		limit = defaultDenseFallbackN
	}
	if limit < 0 {
		return false
	}
	return n <= limit
}

// hmatrixParams maps the engine config onto the hmatrix build parameters.
func hmatrixParams(cfg Config) hmatrix.Params {
	return hmatrix.Params{
		Eps:      cfg.HMatrix.Eps,
		Eta:      cfg.HMatrix.Eta,
		LeafSize: cfg.HMatrix.LeafSize,
		MaxRank:  cfg.HMatrix.MaxRank,
		Workers:  cfg.BEM.Workers,
		Schedule: cfg.BEM.Schedule,
	}
}

// runHMatrix executes the compressed matrix-generation and solve stages into
// res: cluster/block-tree construction with ACA far-field compression
// replaces the dense assembly, and a near-field-preconditioned CG on the
// implicit operator replaces the packed solve. Like the dense solve stage,
// the CG runs to completion once started; ctx is observed between stages and
// between blocks of the build.
func runHMatrix(ctx context.Context, res *Result, asm *bem.Assembler, cfg Config) error {
	start := time.Now()
	h, err := hmatrix.Build(ctx, asm, hmatrixParams(cfg))
	if err != nil {
		return fmt.Errorf("core: matrix generation: %w", err)
	}
	res.HMatrix = h.Stats()
	res.Timings.MatrixGen = time.Since(start)

	if err := ctx.Err(); err != nil {
		return fmt.Errorf("core: solve: %w", err)
	}
	start = time.Now()
	nu := bem.RHS(res.Mesh)
	faultinject.Fire(faultinject.Solve, h.Order(), nu)
	if cfg.HealthCheck {
		for i, v := range nu {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return &HealthError{Reason: HealthNonFiniteSystem, Detail: fmt.Sprintf("load vector entry %d = %g", i, v)}
			}
		}
	}
	sr, err := h.Solve(nu, hmatrix.SolveOptions{Tol: cfg.CGTol})
	if err != nil {
		return fmt.Errorf("core: solve: %w", err)
	}
	if cfg.HealthCheck {
		for i, v := range sr.X {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return &HealthError{Reason: HealthNonFiniteSolution, Detail: fmt.Sprintf("sigma[%d] = %g", i, v)}
			}
		}
	}
	res.Sigma = sr.X
	res.CG = linalg.CGResult{X: sr.X, Iterations: sr.Iterations, Residual: sr.Residual, Converged: true}
	res.Timings.Solve = time.Since(start)
	return nil
}

// runHMatrixWithFallback runs the compressed stages and, when they fail on a
// system small enough to afford the dense path (HMatrixConfig.
// DenseFallbackN), degrades to dense assembly + PCG with a Result warning.
// Health-check errors never degrade: a poisoned load vector would poison the
// dense run identically.
func runHMatrixWithFallback(ctx context.Context, res *Result, asm *bem.Assembler, cfg Config) error {
	hErr := runHMatrix(ctx, res, asm, cfg)
	if hErr == nil {
		return nil
	}
	var health *HealthError
	if errors.As(hErr, &health) || !hmatrixFallbackAllowed(cfg, res.Mesh.NumDoF) {
		return hErr
	}
	if err := ctx.Err(); err != nil {
		return hErr
	}
	res.Warnings = append(res.Warnings, fmt.Sprintf(
		"core: hmatrix solver failed (%v); fell back to dense pcg", hErr))
	res.HMatrix = hmatrix.BuildStats{}
	start := time.Now()
	r, stats, err := asm.MatrixCtx(ctx)
	if err != nil {
		return fmt.Errorf("core: matrix generation (dense fallback): %w", err)
	}
	res.LoopStats = stats
	res.Timings.MatrixGen = time.Since(start)
	cfg.Solver = PCG
	return solveSystem(res, r, cfg)
}

// CompleteHMatrix runs the compressed pipeline (with its dense fallback) on
// an existing assembler, mirroring CompleteAssembled for the sweep engine's
// H-matrix jobs: the outcome is identical to AnalyzeCtx of the same
// (mesh, model, cfg) scenario with Solver = SolverHMatrix.
func CompleteHMatrix(ctx context.Context, asm *bem.Assembler, model soil.Model, warnings []string, cfg Config) (*Result, error) {
	if err := validGPR(&cfg); err != nil {
		return nil, err
	}
	res := &Result{
		Mesh:     asm.Mesh(),
		Model:    model,
		GPR:      cfg.GPR,
		Warnings: warnings,
		asm:      asm,
	}
	if err := runHMatrixWithFallback(ctx, res, asm, cfg); err != nil {
		return nil, err
	}
	if err := finishResults(res, cfg.GPR); err != nil {
		return nil, err
	}
	return res, nil
}
