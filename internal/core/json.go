package core

import (
	"encoding/json"
	"io"
	"time"
)

// JSONReport is the machine-readable form of an analysis result, for
// integration with external design tools and CI pipelines.
type JSONReport struct {
	Soil        string  `json:"soil"`
	Elements    int     `json:"elements"`
	DoF         int     `json:"dof"`
	ElementKind string  `json:"elementKind"`
	TotalLength float64 `json:"totalLengthM"`

	GPRVolts     float64 `json:"gprVolts"`
	ReqOhms      float64 `json:"reqOhms"`
	CurrentAmps  float64 `json:"currentAmps"`
	CGIterations int     `json:"cgIterations,omitempty"`
	CGResidual   float64 `json:"cgResidual,omitempty"`

	Timings JSONTimings `json:"timings"`

	Workers          int     `json:"workers,omitempty"`
	PredictedSpeedup float64 `json:"predictedSpeedup,omitempty"`
}

// JSONTimings carries the Table 6.1 stage breakdown in nanoseconds.
type JSONTimings struct {
	InputNS      int64 `json:"inputNs"`
	PreprocessNS int64 `json:"preprocessNs"`
	MatrixGenNS  int64 `json:"matrixGenNs"`
	SolveNS      int64 `json:"solveNs"`
	ResultsNS    int64 `json:"resultsNs"`
	TotalNS      int64 `json:"totalNs"`
}

// Report builds the machine-readable summary of the result.
func (r *Result) Report() JSONReport {
	st := r.Mesh.Stats()
	rep := JSONReport{
		Soil:        r.Model.Describe(),
		Elements:    st.Elements,
		DoF:         st.DoF,
		ElementKind: r.Mesh.Kind.String(),
		TotalLength: st.TotalLength,
		GPRVolts:    r.GPR,
		ReqOhms:     r.Req,
		CurrentAmps: r.Current,
		Timings: JSONTimings{
			InputNS:      int64(r.Timings.Input / time.Nanosecond),
			PreprocessNS: int64(r.Timings.Preprocess / time.Nanosecond),
			MatrixGenNS:  int64(r.Timings.MatrixGen / time.Nanosecond),
			SolveNS:      int64(r.Timings.Solve / time.Nanosecond),
			ResultsNS:    int64(r.Timings.Results / time.Nanosecond),
			TotalNS:      int64(r.Timings.Total() / time.Nanosecond),
		},
	}
	if r.CG.Iterations > 0 || r.CG.Converged {
		rep.CGIterations = r.CG.Iterations
		rep.CGResidual = r.CG.Residual
	}
	if r.LoopStats.Workers > 1 {
		rep.Workers = r.LoopStats.Workers
		rep.PredictedSpeedup = r.PredictedSpeedup()
	}
	return rep
}

// WriteJSON emits the report as indented JSON.
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Report())
}
