package core

import (
	"errors"
	"math"
	"strings"
	"testing"

	"earthing/internal/faultinject"
	"earthing/internal/grid"
	"earthing/internal/linalg"
	"earthing/internal/soil"
)

func hmatrixTestConfig() Config {
	return Config{
		GPR:        10_000,
		MaxElemLen: 3,
		Solver:     SolverHMatrix,
		HMatrix:    HMatrixConfig{LeafSize: 4},
	}
}

// TestAnalyzeHMatrixMatchesDense runs the full pipeline under SolverHMatrix
// and pins the engineering outputs against the dense PCG reference within
// the documented 10·ε budget.
func TestAnalyzeHMatrixMatchesDense(t *testing.T) {
	g := grid.RectMesh(0, 0, 24, 24, 4, 4, 0.8, 0.006)
	model := soil.NewUniform(0.016)
	cfg := hmatrixTestConfig()

	res, err := Analyze(g, model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.HMatrix.N == 0 {
		t.Fatal("Result.HMatrix stats empty — compressed path not taken")
	}
	if res.HMatrix.LowRank == 0 {
		t.Fatal("no ACA blocks on a 24 m grid at leaf size 4")
	}
	if !res.CG.Converged || res.CG.Iterations == 0 {
		t.Errorf("CG result not recorded: %+v", res.CG)
	}

	denseCfg := cfg
	denseCfg.Solver = PCG
	want, err := Analyze(g, model, denseCfg)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(res.Req-want.Req) / want.Req; rel > 10*1e-6 {
		t.Errorf("Req %.8g vs dense %.8g (rel %.3g), budget 10·ε", res.Req, want.Req, rel)
	}
}

// TestHMatrixDenseFallbackWarning: when the compressed solve fails on a
// system small enough for the dense path, the analysis degrades gracefully —
// dense PCG result, a Result warning naming the cause, compressed stats
// cleared — instead of failing.
func TestHMatrixDenseFallbackWarning(t *testing.T) {
	g := grid.RectMesh(0, 0, 24, 24, 4, 4, 0.8, 0.006)
	model := soil.NewUniform(0.016)
	cfg := hmatrixTestConfig() // DenseFallbackN 0 → default 2000 ≫ this system

	// Poison every compressed operator application: the CG recurrence breaks
	// down, the dense fallback (which never touches the H-matrix) completes.
	defer faultinject.Set(faultinject.HMatrixCGIter, faultinject.PoisonNaN())()

	res, err := Analyze(g, model, cfg)
	if err != nil {
		t.Fatalf("fallback should have absorbed the compressed failure: %v", err)
	}
	found := false
	for _, w := range res.Warnings {
		if strings.Contains(w, "fell back to dense pcg") {
			found = true
		}
	}
	if !found {
		t.Errorf("no fallback warning on Result; warnings: %q", res.Warnings)
	}
	if res.HMatrix.N != 0 {
		t.Errorf("stale compressed stats on a dense-fallback result: %+v", res.HMatrix)
	}

	denseCfg := cfg
	denseCfg.Solver = PCG
	want, err := Analyze(g, model, denseCfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Req != want.Req {
		t.Errorf("fallback Req %v != dense reference %v (must be the identical path)", res.Req, want.Req)
	}
}

// TestHMatrixFallbackDisabled: DenseFallbackN < 0 turns the same failure into
// a typed error — the contract the chaos suites build on.
func TestHMatrixFallbackDisabled(t *testing.T) {
	g := grid.RectMesh(0, 0, 24, 24, 4, 4, 0.8, 0.006)
	cfg := hmatrixTestConfig()
	cfg.HMatrix.DenseFallbackN = -1

	defer faultinject.Set(faultinject.HMatrixCGIter, faultinject.PoisonNaN())()

	_, err := Analyze(g, soil.NewUniform(0.016), cfg)
	if !errors.Is(err, linalg.ErrCGBreakdown) {
		t.Fatalf("err = %v, want linalg.ErrCGBreakdown", err)
	}
}
