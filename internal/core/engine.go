// Package core implements the grounding-analysis engine: the five-stage
// pipeline whose per-stage CPU times the paper reports in Table 6.1 —
// data input, data preprocessing, matrix generation, linear system solving
// and results storage — wired over the substrate packages (grid, soil, bem,
// linalg, sched).
package core

import (
	"context"
	"fmt"
	"io"
	"math"
	"time"

	"earthing/internal/bem"
	"earthing/internal/geom"
	"earthing/internal/grid"
	"earthing/internal/linalg"
	"earthing/internal/sched"
	"earthing/internal/soil"
)

// SolverKind selects the linear solver for system (4.4).
type SolverKind int

const (
	// PCG is the diagonal preconditioned conjugate gradient solver the
	// paper recommends for large systems (§4.3). Default.
	PCG SolverKind = iota
	// Cholesky is the direct O(N³/3) solver, preferable only for small
	// systems or as a reference.
	Cholesky
)

// String implements fmt.Stringer.
func (s SolverKind) String() string {
	switch s {
	case PCG:
		return "pcg"
	case Cholesky:
		return "cholesky"
	default:
		return fmt.Sprintf("SolverKind(%d)", int(s))
	}
}

// Config configures an analysis. The zero value analyzes with a unit GPR,
// one linear element per conductor (the paper's discretization), PCG solve
// and default BEM options.
type Config struct {
	// GPR is the Ground Potential Rise in volts (default 1; the potential
	// and current outputs scale linearly with it, §2).
	GPR float64
	// ElementKind selects linear (default) or constant elements.
	ElementKind grid.ElementKind
	// MaxElemLen subdivides conductors into elements no longer than this;
	// ≤ 0 keeps one element per conductor.
	MaxElemLen float64
	// RodElements, when > 0, forces vertical conductors that were not split
	// at an interface to that many elements (the Balaidos discretization
	// uses 2).
	RodElements int
	// BEM configures matrix generation (schedules, loop strategy, series
	// tolerance, workers).
	BEM bem.Options
	// Solver selects PCG (default) or Cholesky.
	Solver SolverKind
	// CGTol is the PCG relative-residual target (default 1e-10).
	CGTol float64
}

// StageTimings records wall-clock time per pipeline stage (Table 6.1 rows).
type StageTimings struct {
	Input      time.Duration
	Preprocess time.Duration
	MatrixGen  time.Duration
	Solve      time.Duration
	Results    time.Duration
}

// Total sums all stages.
func (t StageTimings) Total() time.Duration {
	return t.Input + t.Preprocess + t.MatrixGen + t.Solve + t.Results
}

// Result is the outcome of a grounding analysis.
type Result struct {
	Mesh  *grid.Mesh
	Model soil.Model
	// Sigma is the solved leakage line density per DoF for a unit GPR
	// (multiply by GPR for physical A/m).
	Sigma []float64
	// GPR echoes the configured ground potential rise in volts.
	GPR float64
	// Req is the equivalent grounding resistance in ohms (eq. 2.2).
	Req float64
	// Current is the total fault current IΓ in amperes at the configured
	// GPR.
	Current float64
	// Timings holds the per-stage durations.
	Timings StageTimings
	// LoopStats describes how matrix generation distributed work.
	LoopStats sched.Stats
	// CG reports solver convergence (PCG only).
	CG linalg.CGResult
	// Warnings lists non-fatal modelling issues found during preprocessing
	// (e.g. an electrically fragmented grid — the solver still imposes the
	// equipotential condition on every conductor, but a floating electrode
	// usually indicates a data-entry error).
	Warnings []string

	asm *bem.Assembler
}

// PotentialAt returns the earth potential in volts at x for the configured
// GPR (eq. 4.2).
func (r *Result) PotentialAt(x geom.Vec3) float64 {
	return r.GPR * r.asm.Potential(x, r.Sigma)
}

// Assembler exposes the underlying BEM assembler (for batch post-processing).
func (r *Result) Assembler() *bem.Assembler { return r.asm }

// Analyze runs preprocessing, matrix generation, solve and results stages on
// a grounding grid. The grid is split at the soil-model interfaces
// automatically.
func Analyze(g *grid.Grid, model soil.Model, cfg Config) (*Result, error) {
	return analyze(context.Background(), g, nil, model, cfg, 0)
}

// AnalyzeCtx is Analyze with cooperative cancellation: the matrix-generation
// loop observes ctx at schedule chunk boundaries (so an abandoned request
// stops mid-assembly), and the pipeline checks ctx between stages. The solve
// stage itself runs to completion once started — for the systems this engine
// targets it is < 0.1 % of the assembly cost (Table 6.1).
func AnalyzeCtx(ctx context.Context, g *grid.Grid, model soil.Model, cfg Config) (*Result, error) {
	return analyze(ctx, g, nil, model, cfg, 0)
}

// AnalyzeMesh runs the pipeline on an explicitly discretized mesh, e.g. the
// paper-exact discretizations grid.BarberaMesh and grid.BalaidosMesh. The
// mesh must already respect the model's layer interfaces.
func AnalyzeMesh(m *grid.Mesh, model soil.Model, cfg Config) (*Result, error) {
	return analyze(context.Background(), nil, m, model, cfg, 0)
}

// AnalyzeMeshCtx is AnalyzeMesh with the cancellation semantics of
// AnalyzeCtx.
func AnalyzeMeshCtx(ctx context.Context, m *grid.Mesh, model soil.Model, cfg Config) (*Result, error) {
	return analyze(ctx, nil, m, model, cfg, 0)
}

// AnalyzeReader parses a grid from r (grid text format) and analyzes it,
// populating the Data Input stage timing.
func AnalyzeReader(rd io.Reader, model soil.Model, cfg Config) (*Result, error) {
	start := time.Now()
	g, err := grid.Read(rd)
	if err != nil {
		return nil, fmt.Errorf("core: data input: %w", err)
	}
	return analyze(context.Background(), g, nil, model, cfg, time.Since(start))
}

// interfaceDepths extracts the layer interface depths of a model.
func interfaceDepths(model soil.Model) []float64 {
	var depths []float64
	// Interfaces are where LayerOf changes; models expose layer count, and
	// the two concrete layered models both mark the interface as belonging
	// to the upper layer. Probe with bisection over a generous depth range.
	n := model.NumLayers()
	if n <= 1 {
		return nil
	}
	const maxDepth = 1 << 20
	lo := 0.0
	for layer := 1; layer < n; layer++ {
		a, b := lo, float64(maxDepth)
		// Invariant: LayerOf(a) ≤ layer, LayerOf(b) ≥ layer+1.
		for i := 0; i < 200 && b-a > 1e-12*(1+b); i++ {
			mid := 0.5 * (a + b)
			if model.LayerOf(mid) <= layer {
				a = mid
			} else {
				b = mid
			}
		}
		depths = append(depths, a)
		lo = a
	}
	return depths
}

func analyze(ctx context.Context, g *grid.Grid, mesh *grid.Mesh, model soil.Model, cfg Config, inputTime time.Duration) (*Result, error) {
	if cfg.GPR == 0 {
		cfg.GPR = 1
	}
	if cfg.GPR < 0 || math.IsNaN(cfg.GPR) {
		return nil, fmt.Errorf("core: invalid GPR %g", cfg.GPR)
	}
	res := &Result{Model: model, GPR: cfg.GPR}
	res.Timings.Input = inputTime

	// Stage: data preprocessing — interface splitting, discretization, DoF
	// numbering, assembler setup (element Gauss data, kernel expansions).
	start := time.Now()
	if mesh == nil {
		if err := g.CheckBonding(); err != nil {
			res.Warnings = append(res.Warnings, err.Error())
		}
		split := g.SplitAtDepths(interfaceDepths(model)...)
		var err error
		mesh, err = grid.DiscretizeN(split, cfg.ElementKind, func(c grid.Conductor) int {
			n := 1
			if cfg.MaxElemLen > 0 {
				n = int(math.Ceil(c.Length() / cfg.MaxElemLen))
			}
			if cfg.RodElements > 0 && c.Seg.IsVertical(1e-9) && n < cfg.RodElements {
				n = cfg.RodElements
			}
			if n < 1 {
				n = 1
			}
			return n
		})
		if err != nil {
			return nil, fmt.Errorf("core: preprocess: %w", err)
		}
	}
	res.Mesh = mesh
	asm, err := bem.New(mesh, model, cfg.BEM)
	if err != nil {
		return nil, fmt.Errorf("core: preprocess: %w", err)
	}
	res.asm = asm
	res.Timings.Preprocess = time.Since(start)

	// Stage: matrix generation — the dominant cost for layered soils
	// (Table 6.1) and the parallelized loop (§6.2).
	start = time.Now()
	r, stats, err := asm.MatrixCtx(ctx)
	if err != nil {
		return nil, fmt.Errorf("core: matrix generation: %w", err)
	}
	res.LoopStats = stats
	res.Timings.MatrixGen = time.Since(start)

	// Stage: linear system solving.
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: solve: %w", err)
	}
	start = time.Now()
	nu := bem.RHS(mesh)
	switch cfg.Solver {
	case PCG:
		tol := cfg.CGTol
		if tol <= 0 {
			tol = 1e-10
		}
		cg, err := linalg.SolveCGParallel(r, nu, linalg.CGOptions{Tol: tol}, cfg.BEM.Workers)
		if err != nil {
			return nil, fmt.Errorf("core: solve: %w", err)
		}
		if !cg.Converged {
			return nil, fmt.Errorf("core: solve: PCG stalled at residual %g", cg.Residual)
		}
		res.CG = cg
		res.Sigma = cg.X
	case Cholesky:
		ch, err := linalg.NewCholeskyParallel(r, cfg.BEM.Workers)
		if err != nil {
			return nil, fmt.Errorf("core: solve: %w", err)
		}
		x, err := ch.Solve(nu)
		if err != nil {
			return nil, fmt.Errorf("core: solve: %w", err)
		}
		res.Sigma = x
	default:
		return nil, fmt.Errorf("core: unknown solver %v", cfg.Solver)
	}
	res.Timings.Solve = time.Since(start)

	// Stage: results — design parameters from the solved density (eq. 2.2).
	start = time.Now()
	unitCurrent := bem.TotalCurrent(mesh, res.Sigma)
	if unitCurrent <= 0 || math.IsNaN(unitCurrent) {
		return nil, fmt.Errorf("core: results: non-physical total current %g", unitCurrent)
	}
	res.Req = 1 / unitCurrent
	res.Current = cfg.GPR * unitCurrent
	res.Timings.Results = time.Since(start)
	return res, nil
}
