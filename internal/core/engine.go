// Package core implements the grounding-analysis engine: the five-stage
// pipeline whose per-stage CPU times the paper reports in Table 6.1 —
// data input, data preprocessing, matrix generation, linear system solving
// and results storage — wired over the substrate packages (grid, soil, bem,
// linalg, sched).
package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"earthing/internal/bem"
	"earthing/internal/faultinject"
	"earthing/internal/geom"
	"earthing/internal/grid"
	"earthing/internal/hmatrix"
	"earthing/internal/linalg"
	"earthing/internal/sched"
	"earthing/internal/soil"
)

// SolverKind selects the linear solver for system (4.4).
type SolverKind int

const (
	// PCG is the diagonal preconditioned conjugate gradient solver the
	// paper recommends for large systems (§4.3). Default.
	PCG SolverKind = iota
	// Cholesky is the direct O(N³/3) solver, preferable only for small
	// systems or as a reference.
	Cholesky
	// CholeskyBlocked is the tiled right-looking factorization over
	// cache-sized panels of the packed triangle — bit-identical results to
	// Cholesky, substantially faster on large systems.
	CholeskyBlocked
	// CholeskyMixed is CholeskyBlocked with float32 trailing updates and
	// float64 iterative refinement of every solve. Results agree with the
	// full-precision solvers to float64 working accuracy; if refinement
	// cannot repair the float32 factor (hopelessly conditioned system) the
	// engine refactors in full precision rather than serving a degraded
	// solution.
	CholeskyMixed
	// SolverHMatrix skips dense assembly entirely: the system is compressed
	// into a hierarchical matrix (ACA on the η-admissible far field, dense
	// near-field leaves) and solved by near-field-preconditioned conjugate
	// gradients on the implicit operator. Accuracy is governed by
	// Config.HMatrix.Eps; below HMatrixConfig.DenseFallbackN a failed
	// compressed run degrades to dense PCG with a Result warning.
	SolverHMatrix
)

// String implements fmt.Stringer.
func (s SolverKind) String() string {
	switch s {
	case PCG:
		return "pcg"
	case Cholesky:
		return "cholesky"
	case CholeskyBlocked:
		return "cholesky-blocked"
	case CholeskyMixed:
		return "cholesky-mixed"
	case SolverHMatrix:
		return "hmatrix"
	default:
		return fmt.Sprintf("SolverKind(%d)", int(s))
	}
}

// Config configures an analysis. The zero value analyzes with a unit GPR,
// one linear element per conductor (the paper's discretization), PCG solve
// and default BEM options.
type Config struct {
	// GPR is the Ground Potential Rise in volts (default 1; the potential
	// and current outputs scale linearly with it, §2).
	GPR float64
	// ElementKind selects linear (default) or constant elements.
	ElementKind grid.ElementKind
	// MaxElemLen subdivides conductors into elements no longer than this;
	// ≤ 0 keeps one element per conductor.
	MaxElemLen float64
	// RodElements, when > 0, forces vertical conductors that were not split
	// at an interface to that many elements (the Balaidos discretization
	// uses 2).
	RodElements int
	// BEM configures matrix generation (schedules, loop strategy, series
	// tolerance, workers).
	BEM bem.Options
	// Solver selects PCG (default) or Cholesky.
	Solver SolverKind
	// CGTol is the PCG relative-residual target (default 1e-10).
	CGTol float64
	// HMatrix tunes the compressed solver tier (Solver = SolverHMatrix):
	// block tolerance, admissibility, leaf size, rank cap and the dense
	// fallback threshold.
	HMatrix HMatrixConfig
	// HealthCheck enables the numerical health checks around the solve
	// stage: the system matrix and load vector are scanned for NaN/Inf
	// before factorization, the solved density is scanned afterwards, and
	// the matrix conditioning is estimated. Failures surface as a typed
	// *HealthError instead of silently serving garbage.
	HealthCheck bool
	// CondLimit is the condition-number estimate above which a
	// health-checked analysis fails (default 1e12). Estimates within a
	// factor 10⁴ of the limit pass with a warning on the Result.
	CondLimit float64
}

// StageTimings records wall-clock time per pipeline stage (Table 6.1 rows).
type StageTimings struct {
	Input      time.Duration
	Preprocess time.Duration
	MatrixGen  time.Duration
	Solve      time.Duration
	Results    time.Duration
}

// Total sums all stages.
func (t StageTimings) Total() time.Duration {
	return t.Input + t.Preprocess + t.MatrixGen + t.Solve + t.Results
}

// Result is the outcome of a grounding analysis.
type Result struct {
	Mesh  *grid.Mesh
	Model soil.Model
	// Sigma is the solved leakage line density per DoF for a unit GPR
	// (multiply by GPR for physical A/m).
	Sigma []float64
	// GPR echoes the configured ground potential rise in volts.
	GPR float64
	// Req is the equivalent grounding resistance in ohms (eq. 2.2).
	Req float64
	// Current is the total fault current IΓ in amperes at the configured
	// GPR.
	Current float64
	// Timings holds the per-stage durations.
	Timings StageTimings
	// LoopStats describes how matrix generation distributed work.
	LoopStats sched.Stats
	// CG reports solver convergence (PCG and SolverHMatrix).
	CG linalg.CGResult
	// HMatrix holds the compression statistics of a SolverHMatrix run
	// (zero for dense solvers and after a dense fallback).
	HMatrix hmatrix.BuildStats
	// Condition is the 2-norm condition estimate of the system matrix,
	// populated only when Config.HealthCheck is enabled (0 otherwise).
	Condition float64
	// Warnings lists non-fatal modelling issues found during preprocessing
	// (e.g. an electrically fragmented grid — the solver still imposes the
	// equipotential condition on every conductor, but a floating electrode
	// usually indicates a data-entry error).
	Warnings []string

	// unitCurrent is the total leakage current at unit GPR (= 1/Req); kept
	// so GPR-rescaled clones (WithGPR) reproduce Current with the exact
	// floating-point expression the pipeline used.
	unitCurrent float64

	asm *bem.Assembler
}

// WithGPR returns a copy of the result rescaled to a different ground
// potential rise. Sigma (a unit-GPR density), Req, the mesh and the
// assembler are shared unchanged; Current is recomputed as gpr·I₁ with the
// same expression the pipeline uses, so the clone is bit-identical to a
// fresh analysis of the same scenario at that GPR.
func (r *Result) WithGPR(gpr float64) (*Result, error) {
	if gpr <= 0 || math.IsNaN(gpr) || math.IsInf(gpr, 0) {
		return nil, fmt.Errorf("core: invalid GPR %g", gpr)
	}
	c := *r
	c.GPR = gpr
	c.Current = gpr * r.unitCurrent
	return &c, nil
}

// PotentialAt returns the earth potential in volts at x for the configured
// GPR (eq. 4.2).
func (r *Result) PotentialAt(x geom.Vec3) float64 {
	return r.GPR * r.asm.Potential(x, r.Sigma)
}

// Assembler exposes the underlying BEM assembler (for batch post-processing).
func (r *Result) Assembler() *bem.Assembler { return r.asm }

// Analyze runs preprocessing, matrix generation, solve and results stages on
// a grounding grid. The grid is split at the soil-model interfaces
// automatically.
func Analyze(g *grid.Grid, model soil.Model, cfg Config) (*Result, error) {
	//lint:ignore ctxflow synchronous compatibility wrapper; the ctx-first variant is the primary API
	return analyze(context.Background(), g, nil, model, cfg, 0)
}

// AnalyzeCtx is Analyze with cooperative cancellation: the matrix-generation
// loop observes ctx at schedule chunk boundaries (so an abandoned request
// stops mid-assembly), and the pipeline checks ctx between stages. The solve
// stage itself runs to completion once started — for the systems this engine
// targets it is < 0.1 % of the assembly cost (Table 6.1).
func AnalyzeCtx(ctx context.Context, g *grid.Grid, model soil.Model, cfg Config) (*Result, error) {
	return analyze(ctx, g, nil, model, cfg, 0)
}

// AnalyzeMesh runs the pipeline on an explicitly discretized mesh, e.g. the
// paper-exact discretizations grid.BarberaMesh and grid.BalaidosMesh. The
// mesh must already respect the model's layer interfaces.
func AnalyzeMesh(m *grid.Mesh, model soil.Model, cfg Config) (*Result, error) {
	//lint:ignore ctxflow synchronous compatibility wrapper; the ctx-first variant is the primary API
	return analyze(context.Background(), nil, m, model, cfg, 0)
}

// AnalyzeMeshCtx is AnalyzeMesh with the cancellation semantics of
// AnalyzeCtx.
func AnalyzeMeshCtx(ctx context.Context, m *grid.Mesh, model soil.Model, cfg Config) (*Result, error) {
	return analyze(ctx, nil, m, model, cfg, 0)
}

// AnalyzeReader parses a grid from r (grid text format) and analyzes it,
// populating the Data Input stage timing.
func AnalyzeReader(rd io.Reader, model soil.Model, cfg Config) (*Result, error) {
	//lint:ignore ctxflow synchronous compatibility wrapper; the ctx-first variant is the primary API
	return AnalyzeReaderCtx(context.Background(), rd, model, cfg)
}

// AnalyzeReaderCtx is AnalyzeReader with the cancellation semantics of
// AnalyzeCtx.
func AnalyzeReaderCtx(ctx context.Context, rd io.Reader, model soil.Model, cfg Config) (*Result, error) {
	start := time.Now()
	g, err := grid.Read(rd)
	if err != nil {
		return nil, fmt.Errorf("core: data input: %w", err)
	}
	return analyze(ctx, g, nil, model, cfg, time.Since(start))
}

// InterfaceDepths extracts the layer interface depths of a model — the
// depths the grid must be split at before discretization. Two models with
// equal InterfaceDepths discretize a grid into the same mesh, which is the
// mesh-grouping criterion of the sweep engine.
func InterfaceDepths(model soil.Model) []float64 { return interfaceDepths(model) }

// interfaceDepths extracts the layer interface depths of a model.
func interfaceDepths(model soil.Model) []float64 {
	var depths []float64
	// Interfaces are where LayerOf changes; models expose layer count, and
	// the two concrete layered models both mark the interface as belonging
	// to the upper layer. Probe with bisection over a generous depth range.
	n := model.NumLayers()
	if n <= 1 {
		return nil
	}
	const maxDepth = 1 << 20
	lo := 0.0
	for layer := 1; layer < n; layer++ {
		a, b := lo, float64(maxDepth)
		// Invariant: LayerOf(a) ≤ layer, LayerOf(b) ≥ layer+1.
		for i := 0; i < 200 && b-a > 1e-12*(1+b); i++ {
			mid := 0.5 * (a + b)
			if model.LayerOf(mid) <= layer {
				a = mid
			} else {
				b = mid
			}
		}
		depths = append(depths, a)
		lo = a
	}
	return depths
}

// validGPR applies the unit-GPR default and validates the result.
func validGPR(cfg *Config) error {
	if cfg.GPR == 0 {
		cfg.GPR = 1
	}
	if cfg.GPR < 0 || math.IsNaN(cfg.GPR) {
		return fmt.Errorf("core: invalid GPR %g", cfg.GPR)
	}
	return nil
}

// BuildMesh runs the preprocessing geometry stage of the pipeline: bonding
// check (returned as warnings), interface splitting for the model, and
// discretization under the config's element knobs. It is deterministic in
// (g, InterfaceDepths(model), cfg), so scenarios whose models share
// interface depths can share the returned mesh.
func BuildMesh(g *grid.Grid, model soil.Model, cfg Config) (*grid.Mesh, []string, error) {
	var warnings []string
	if err := g.CheckBonding(); err != nil {
		warnings = append(warnings, err.Error())
	}
	split := g.SplitAtDepths(interfaceDepths(model)...)
	mesh, err := grid.DiscretizeN(split, cfg.ElementKind, func(c grid.Conductor) int {
		n := 1
		if cfg.MaxElemLen > 0 {
			n = int(math.Ceil(c.Length() / cfg.MaxElemLen))
		}
		if cfg.RodElements > 0 && c.Seg.IsVertical(1e-9) && n < cfg.RodElements {
			n = cfg.RodElements
		}
		if n < 1 {
			n = 1
		}
		return n
	})
	if err != nil {
		return nil, nil, fmt.Errorf("core: preprocess: %w", err)
	}
	return mesh, warnings, nil
}

// solveSystem runs the linear-system-solving stage into res.
func solveSystem(res *Result, r *linalg.SymMatrix, cfg Config) error {
	start := time.Now()
	nu := bem.RHS(res.Mesh)
	faultinject.Fire(faultinject.Solve, r.Order(), nu)
	if cfg.HealthCheck {
		if err := preSolveHealth(r, nu); err != nil {
			return err
		}
	}
	// A direct-solver factorization is retained for the post-solve health
	// check, whose condition estimate then reuses (and caches on) the handle
	// instead of refactoring the system.
	var chol *linalg.Cholesky
	switch cfg.Solver {
	case PCG:
		tol := cfg.CGTol
		if tol <= 0 {
			tol = 1e-10
		}
		cg, err := linalg.SolveCGParallel(r, nu, linalg.CGOptions{Tol: tol}, cfg.BEM.Workers)
		if err != nil {
			return fmt.Errorf("core: solve: %w", err)
		}
		if !cg.Converged {
			return fmt.Errorf("core: solve: PCG stalled at residual %g", cg.Residual)
		}
		res.CG = cg
		res.Sigma = cg.X
	case Cholesky:
		ch, err := linalg.NewCholeskyParallel(r, cfg.BEM.Workers)
		if err != nil {
			return fmt.Errorf("core: solve: %w", err)
		}
		x, err := ch.Solve(nu)
		if err != nil {
			return fmt.Errorf("core: solve: %w", err)
		}
		chol = ch
		res.Sigma = x
	case CholeskyBlocked, CholeskyMixed:
		opt := linalg.FactorOpts{Workers: cfg.BEM.Workers, Mixed: cfg.Solver == CholeskyMixed}
		ch, err := linalg.NewCholeskyBlocked(r, opt)
		if err != nil {
			return fmt.Errorf("core: solve: %w", err)
		}
		x, err := ch.Solve(nu)
		if errors.Is(err, linalg.ErrRefinementStalled) {
			// The float32 factor cannot be refined to float64 accuracy on
			// this system. Refusing to degrade silently, refactor in full
			// precision and record what happened.
			res.Warnings = append(res.Warnings, fmt.Sprintf(
				"core: solve: %v; refactored in full precision", err))
			opt.Mixed = false
			if ch, err = linalg.NewCholeskyBlocked(r, opt); err != nil {
				return fmt.Errorf("core: solve: full-precision fallback: %w", err)
			}
			x, err = ch.Solve(nu)
		}
		if err != nil {
			return fmt.Errorf("core: solve: %w", err)
		}
		chol = ch
		res.Sigma = x
	case SolverHMatrix:
		// The compressed tier owns its own pipeline stages; an externally
		// assembled dense system has nothing left to compress.
		return fmt.Errorf("core: SolverHMatrix cannot solve an externally assembled dense system; use CompleteHMatrix")
	default:
		return fmt.Errorf("core: unknown solver %v", cfg.Solver)
	}
	if cfg.HealthCheck {
		if err := postSolveHealth(res, r, cfg, chol); err != nil {
			return err
		}
	}
	res.Timings.Solve = time.Since(start)
	return nil
}

// finishResults runs the results stage: design parameters from the solved
// density (eq. 2.2).
func finishResults(res *Result, gpr float64) error {
	start := time.Now()
	unitCurrent := bem.TotalCurrent(res.Mesh, res.Sigma)
	if unitCurrent <= 0 || math.IsNaN(unitCurrent) {
		return fmt.Errorf("core: results: non-physical total current %g", unitCurrent)
	}
	res.unitCurrent = unitCurrent
	res.Req = 1 / unitCurrent
	res.Current = gpr * unitCurrent
	res.Timings.Results = time.Since(start)
	return nil
}

// CompleteAssembled finishes the pipeline for an externally generated system
// matrix r (e.g. one the sweep engine assembled column-by-column through
// Assembler.ComputeColumn/AssembleStore): it runs the solve and results
// stages exactly as the full pipeline does, so the outcome is bit-identical
// to Analyze of the same (mesh, model, cfg) scenario. warnings are the
// preprocessing warnings of BuildMesh; stats describes the loop that
// generated the matrix (zero if unknown).
func CompleteAssembled(asm *bem.Assembler, model soil.Model, r *linalg.SymMatrix, stats sched.Stats, warnings []string, cfg Config) (*Result, error) {
	if err := validGPR(&cfg); err != nil {
		return nil, err
	}
	res := &Result{
		Mesh:      asm.Mesh(),
		Model:     model,
		GPR:       cfg.GPR,
		LoopStats: stats,
		Warnings:  warnings,
		asm:       asm,
	}
	if err := solveSystem(res, r, cfg); err != nil {
		return nil, err
	}
	if err := finishResults(res, cfg.GPR); err != nil {
		return nil, err
	}
	return res, nil
}

// Rehydrate rebuilds a solved Result from a previously computed unit-GPR
// density (e.g. one replayed from groundd's durable scenario store) without
// re-running matrix generation or the solve — the two stages that are ≫ 99 %
// of Analyze (Table 6.1). Only the deterministic preprocessing (interface
// splitting, discretization, assembler setup) and the results stage run, so
// for a sigma produced by Analyze of the same (g, model, cfg) scenario the
// rebuilt Result reports bit-identical design parameters: Req and Current
// are recomputed with exactly the expressions finishResults uses on the
// fresh path. The density is validated against the mesh's DoF count and the
// results stage's physicality check, so a corrupted sigma yields an error,
// never a plausible-looking wrong answer.
func Rehydrate(g *grid.Grid, model soil.Model, sigma []float64, cfg Config) (*Result, error) {
	if err := validGPR(&cfg); err != nil {
		return nil, err
	}
	mesh, warnings, err := BuildMesh(g, model, cfg)
	if err != nil {
		return nil, err
	}
	if len(sigma) != mesh.NumDoF {
		return nil, fmt.Errorf("core: rehydrate: density has %d entries, mesh has %d DoF", len(sigma), mesh.NumDoF)
	}
	asm, err := bem.New(mesh, model, cfg.BEM)
	if err != nil {
		return nil, fmt.Errorf("core: preprocess: %w", err)
	}
	res := &Result{
		Mesh:     mesh,
		Model:    model,
		Sigma:    sigma,
		GPR:      cfg.GPR,
		Warnings: warnings,
		asm:      asm,
	}
	if err := finishResults(res, cfg.GPR); err != nil {
		return nil, err
	}
	return res, nil
}

// Footprint estimates the resident bytes a retained Result pins: the solved
// density, the mesh (72 B per element, 24 B per node position) and the
// assembler's precomputed quadrature and image data. An estimate for cache
// byte-accounting, not an exact allocator census.
func (r *Result) Footprint() int64 {
	if r == nil {
		return 256
	}
	n := int64(len(r.Sigma)) * 8
	if r.Mesh != nil {
		n += int64(len(r.Mesh.Elements))*72 + int64(len(r.Mesh.NodePos))*24
	}
	if r.asm != nil {
		n += r.asm.Footprint()
	}
	return n + 256
}

// ScaledResult derives the solution for a soil model proportional to the
// base result's (every conductivity multiplied by scale, identical layer
// geometry) without re-assembly or re-solve: the BEM kernels scale by
// 1/scale, so σ scales by scale, R_eq by 1/scale. asm must be an assembler
// of the target model over the same mesh (it serves post-processing —
// potentials, rasters — with the correct kernels; its Matrix is never
// called). The derivation is mathematically exact but NOT bit-identical to
// a fresh assembly under the target model, so callers opt in explicitly.
func ScaledResult(base *Result, model soil.Model, asm *bem.Assembler, scale, gpr float64) (*Result, error) {
	if scale <= 0 || math.IsNaN(scale) || math.IsInf(scale, 0) {
		return nil, fmt.Errorf("core: invalid conductivity scale %g", scale)
	}
	if gpr <= 0 || math.IsNaN(gpr) || math.IsInf(gpr, 0) {
		return nil, fmt.Errorf("core: invalid GPR %g", gpr)
	}
	sigma := make([]float64, len(base.Sigma))
	for i, v := range base.Sigma {
		sigma[i] = scale * v
	}
	res := &Result{
		Mesh:        base.Mesh,
		Model:       model,
		Sigma:       sigma,
		GPR:         gpr,
		Warnings:    base.Warnings,
		unitCurrent: scale * base.unitCurrent,
		asm:         asm,
	}
	res.Req = 1 / res.unitCurrent
	res.Current = gpr * res.unitCurrent
	return res, nil
}

func analyze(ctx context.Context, g *grid.Grid, mesh *grid.Mesh, model soil.Model, cfg Config, inputTime time.Duration) (*Result, error) {
	if err := validGPR(&cfg); err != nil {
		return nil, err
	}
	res := &Result{Model: model, GPR: cfg.GPR}
	res.Timings.Input = inputTime

	// Stage: data preprocessing — interface splitting, discretization, DoF
	// numbering, assembler setup (element Gauss data, kernel expansions).
	start := time.Now()
	if mesh == nil {
		var warnings []string
		var err error
		mesh, warnings, err = BuildMesh(g, model, cfg)
		if err != nil {
			return nil, err
		}
		res.Warnings = warnings
	}
	res.Mesh = mesh
	asm, err := bem.New(mesh, model, cfg.BEM)
	if err != nil {
		return nil, fmt.Errorf("core: preprocess: %w", err)
	}
	res.asm = asm
	res.Timings.Preprocess = time.Since(start)

	// The compressed tier replaces both the dense matrix-generation and the
	// packed solve stages (degrading to them on small systems when the
	// compression or the iterative solve fails).
	if cfg.Solver == SolverHMatrix {
		if err := runHMatrixWithFallback(ctx, res, asm, cfg); err != nil {
			return nil, err
		}
		if err := finishResults(res, cfg.GPR); err != nil {
			return nil, err
		}
		return res, nil
	}

	// Stage: matrix generation — the dominant cost for layered soils
	// (Table 6.1) and the parallelized loop (§6.2).
	start = time.Now()
	r, stats, err := asm.MatrixCtx(ctx)
	if err != nil {
		return nil, fmt.Errorf("core: matrix generation: %w", err)
	}
	res.LoopStats = stats
	res.Timings.MatrixGen = time.Since(start)

	// Stage: linear system solving.
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: solve: %w", err)
	}
	if err := solveSystem(res, r, cfg); err != nil {
		return nil, err
	}

	// Stage: results.
	if err := finishResults(res, cfg.GPR); err != nil {
		return nil, err
	}
	return res, nil
}
