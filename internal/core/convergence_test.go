package core

import (
	"math"
	"testing"

	"earthing/internal/grid"
	"earthing/internal/soil"
)

// TestReqConvergesUnderRefinement refines a small grid and checks Req
// settles: successive refinements must change the result less and less,
// addressing the classical failure mode the paper cites ("unrealistic
// results when segmentation of conductors was increased" [3]) that the
// Galerkin formulation avoids [6].
func TestReqConvergesUnderRefinement(t *testing.T) {
	g := grid.RectMesh(0, 0, 20, 20, 3, 3, 0.8, 0.006)
	model := soil.NewTwoLayer(0.005, 0.016, 1.0)
	var reqs []float64
	for _, ml := range []float64{10, 5, 2.5, 1.25} {
		res, err := Analyze(g, model, Config{MaxElemLen: ml})
		if err != nil {
			t.Fatal(err)
		}
		reqs = append(reqs, res.Req)
	}
	d1 := math.Abs(reqs[1] - reqs[0])
	d2 := math.Abs(reqs[2] - reqs[1])
	d3 := math.Abs(reqs[3] - reqs[2])
	if !(d3 < d2 && d2 < d1) {
		t.Errorf("refinement not converging: Req = %v (deltas %v, %v, %v)", reqs, d1, d2, d3)
	}
	// The finest two agree within a fraction of a percent.
	if d3/reqs[3] > 0.003 {
		t.Errorf("residual refinement change %.4f%%", 100*d3/reqs[3])
	}
}

// TestRefinementStaysMonotoneDecreasing: adding degrees of freedom enlarges
// the trial space of the Galerkin method, so the computed resistance
// decreases monotonically toward the true value.
func TestRefinementStaysMonotoneDecreasing(t *testing.T) {
	g := grid.HorizontalWire(0, 0, 0.8, 20, 0.005)
	model := soil.NewUniform(0.02)
	prev := math.Inf(1)
	for _, ml := range []float64{20, 10, 5, 2.5, 1.25} {
		res, err := Analyze(g, model, Config{MaxElemLen: ml})
		if err != nil {
			t.Fatal(err)
		}
		if res.Req > prev*(1+1e-9) {
			t.Errorf("Req increased under refinement: %v -> %v (maxlen %v)", prev, res.Req, ml)
		}
		prev = res.Req
	}
}

// TestDepthReducesResistance: burying the same grid deeper lowers Req and
// the surface potentials (classic design behaviour).
func TestDepthReducesResistance(t *testing.T) {
	model := soil.NewUniform(0.02)
	shallow, err := Analyze(grid.RectMesh(0, 0, 20, 20, 3, 3, 0.3, 0.006), model, Config{})
	if err != nil {
		t.Fatal(err)
	}
	deep, err := Analyze(grid.RectMesh(0, 0, 20, 20, 3, 3, 2.0, 0.006), model, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if deep.Req >= shallow.Req {
		t.Errorf("deeper grid did not reduce Req: %v vs %v", deep.Req, shallow.Req)
	}
}

// TestResistiveTopLayerRaisesReq mirrors the paper's Barberá observation:
// with the grid in a resistive top layer over conductive subsoil, Req
// exceeds the uniform-subsoil value; a conductive top layer lowers it.
func TestResistiveTopLayerRaisesReq(t *testing.T) {
	g := grid.RectMesh(0, 0, 30, 30, 4, 4, 0.8, 0.006)
	uni, err := Analyze(g, soil.NewUniform(0.016), Config{})
	if err != nil {
		t.Fatal(err)
	}
	resTop, err := Analyze(g, soil.NewTwoLayer(0.005, 0.016, 1.0), Config{})
	if err != nil {
		t.Fatal(err)
	}
	condTop, err := Analyze(g, soil.NewTwoLayer(0.05, 0.016, 1.0), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !(resTop.Req > uni.Req && condTop.Req < uni.Req) {
		t.Errorf("layer ordering wrong: resistive-top %v, uniform %v, conductive-top %v",
			resTop.Req, uni.Req, condTop.Req)
	}
}

// TestLargerGridLowersReq: resistance scales roughly with 1/√area.
func TestLargerGridLowersReq(t *testing.T) {
	model := soil.NewUniform(0.02)
	small, err := Analyze(grid.RectMesh(0, 0, 20, 20, 3, 3, 0.8, 0.006), model, Config{})
	if err != nil {
		t.Fatal(err)
	}
	large, err := Analyze(grid.RectMesh(0, 0, 80, 80, 9, 9, 0.8, 0.006), model, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ratio := small.Req / large.Req
	// Area ratio 16 → √16 = 4; with the denser lattice the drop is larger.
	if ratio < 2.5 {
		t.Errorf("Req ratio %v too small for a 16x area increase", ratio)
	}
}
