package core

import (
	"fmt"
	"io"
)

// WriteReport emits a human-readable analysis report (the "results storage"
// output of the pipeline).
func (r *Result) WriteReport(w io.Writer) error {
	st := r.Mesh.Stats()
	_, err := fmt.Fprintf(w, `grounding analysis report
  soil model:       %s
  discretization:   %d %s elements, %d degrees of freedom
  total electrode:  %.2f m
  GPR:              %.6g V
  equivalent resistance Req: %.6g ohm
  total fault current IGamma: %.6g A
  stage timings: input=%v preprocess=%v matrix=%v solve=%v results=%v (total %v)
`,
		r.Model.Describe(),
		st.Elements, r.Mesh.Kind, st.DoF,
		st.TotalLength,
		r.GPR,
		r.Req,
		r.Current,
		r.Timings.Input, r.Timings.Preprocess, r.Timings.MatrixGen,
		r.Timings.Solve, r.Timings.Results, r.Timings.Total(),
	)
	if err != nil {
		return err
	}
	for _, warn := range r.Warnings {
		if _, err := fmt.Fprintf(w, "  WARNING: %s\n", warn); err != nil {
			return err
		}
	}
	return nil
}

// PredictedSpeedup estimates the parallel speed-up implied by the work
// distribution of the matrix-generation loop: Σ element pairs / max pairs
// over workers. On a machine with one physical core per worker and
// negligible scheduling overhead this equals the wall-clock speed-up; it is
// the load-balance quantity the schedule comparison of Table 6.2 probes,
// and it is host-independent (the reproduction host may have fewer cores
// than configured workers — see EXPERIMENTS.md).
func (r *Result) PredictedSpeedup() float64 {
	return r.asm.PredictedSpeedup()
}
