package core

import (
	"math"
	"strings"
	"testing"

	"earthing/internal/bem"
	"earthing/internal/geom"
	"earthing/internal/grid"
	"earthing/internal/soil"
)

func relDiff(a, b float64) float64 {
	return math.Abs(a-b) / (1 + math.Max(math.Abs(a), math.Abs(b)))
}

func TestAnalyzeSmallGridUniform(t *testing.T) {
	g := grid.RectMesh(0, 0, 20, 20, 3, 3, 0.8, 0.006)
	res, err := Analyze(g, soil.NewUniform(0.016), Config{GPR: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Req <= 0 || math.IsNaN(res.Req) {
		t.Fatalf("Req = %v", res.Req)
	}
	if relDiff(res.Current, 10_000/res.Req) > 1e-12 {
		t.Errorf("I = %v, want GPR/Req = %v", res.Current, 10_000/res.Req)
	}
	// A 20×20 m grid in 62.5 Ω·m soil lands in the ~1–3 Ω range.
	if res.Req < 0.5 || res.Req > 5 {
		t.Errorf("Req = %v ohm out of physical range", res.Req)
	}
	if !res.CG.Converged {
		t.Error("PCG did not converge")
	}
	if res.Timings.MatrixGen <= 0 || res.Timings.Solve <= 0 {
		t.Errorf("stage timings not recorded: %+v", res.Timings)
	}
}

func TestGPRScalesLinearly(t *testing.T) {
	g := grid.RectMesh(0, 0, 15, 15, 2, 2, 0.8, 0.006)
	model := soil.NewTwoLayer(0.005, 0.016, 1.0)
	r1, err := Analyze(g, model, Config{GPR: 1})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Analyze(g, model, Config{GPR: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	if relDiff(r1.Req, r2.Req) > 1e-12 {
		t.Error("Req must not depend on GPR")
	}
	if relDiff(r2.Current, 10_000*r1.Current) > 1e-9 {
		t.Errorf("current did not scale: %v vs %v", r2.Current, 10_000*r1.Current)
	}
	p1 := r1.PotentialAt(geom.V(30, 7, 0))
	p2 := r2.PotentialAt(geom.V(30, 7, 0))
	if relDiff(p2, 10_000*p1) > 1e-9 {
		t.Errorf("potential did not scale: %v vs %v", p2, 10_000*p1)
	}
}

func TestSolversAgree(t *testing.T) {
	g := grid.RectMesh(0, 0, 20, 20, 3, 3, 0.8, 0.006)
	model := soil.NewTwoLayer(0.005, 0.016, 1.0)
	pcg, err := Analyze(g, model, Config{Solver: PCG})
	if err != nil {
		t.Fatal(err)
	}
	chol, err := Analyze(g, model, Config{Solver: Cholesky})
	if err != nil {
		t.Fatal(err)
	}
	if relDiff(pcg.Req, chol.Req) > 1e-8 {
		t.Errorf("PCG Req %v vs Cholesky Req %v", pcg.Req, chol.Req)
	}
}

func TestAnalyzeSplitsAtInterfaces(t *testing.T) {
	// A rod crossing the two-layer interface must be handled transparently.
	g := grid.SingleRod(0, 0, 0.5, 2.0, 0.007)
	model := soil.NewTwoLayer(0.005, 0.016, 1.0)
	res, err := Analyze(g, model, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Mesh.Elements) < 2 {
		t.Errorf("expected interface split, got %d elements", len(res.Mesh.Elements))
	}
	if res.Req <= 0 {
		t.Errorf("Req = %v", res.Req)
	}
}

func TestInterfaceDepthsProbe(t *testing.T) {
	tl := soil.NewTwoLayer(0.005, 0.016, 1.25)
	d := interfaceDepths(tl)
	if len(d) != 1 || math.Abs(d[0]-1.25) > 1e-6 {
		t.Errorf("two-layer interfaces = %v", d)
	}
	ml, err := soil.NewMultiLayer([]float64{1, 2, 3}, []float64{0.7, 2.3})
	if err != nil {
		t.Fatal(err)
	}
	d = interfaceDepths(ml)
	if len(d) != 2 || math.Abs(d[0]-0.7) > 1e-6 || math.Abs(d[1]-3.0) > 1e-6 {
		t.Errorf("three-layer interfaces = %v", d)
	}
	if got := interfaceDepths(soil.NewUniform(1)); got != nil {
		t.Errorf("uniform interfaces = %v", got)
	}
}

func TestRodElementsOption(t *testing.T) {
	g := grid.Balaidos()
	model := soil.NewUniform(0.02)
	res, err := Analyze(g, model, Config{RodElements: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Mesh.Elements) != 241 { // 107 + 2·67, paper's Balaidos count
		t.Errorf("elements = %d, want 241", len(res.Mesh.Elements))
	}
}

func TestAnalyzeReader(t *testing.T) {
	in := `name tiny
conductor 0 0 0.8 10 0 0.8 0.006
conductor 0 0 0.8 0 10 0.8 0.006
rod 0 0 0.8 1.5 0.007
`
	res, err := AnalyzeReader(strings.NewReader(in), soil.NewUniform(0.02), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Req <= 0 {
		t.Errorf("Req = %v", res.Req)
	}
	if _, err := AnalyzeReader(strings.NewReader("garbage"), soil.NewUniform(0.02), Config{}); err == nil {
		t.Error("bad input accepted")
	}
}

func TestAnalyzeMeshPaperDiscretizations(t *testing.T) {
	m, err := grid.BalaidosMesh()
	if err != nil {
		t.Fatal(err)
	}
	res, err := AnalyzeMesh(m, soil.NewUniform(0.020), Config{GPR: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	// Paper Table 5.1 model A: Req = 0.3366 Ω, I = 29.71 kA. The interior
	// layout is synthesized, so accept the engineering ballpark.
	if res.Req < 0.15 || res.Req > 0.7 {
		t.Errorf("Balaidos model A Req = %v ohm, paper 0.3366", res.Req)
	}
}

func TestBoundaryConditionOnElectrode(t *testing.T) {
	g := grid.RectMesh(0, 0, 20, 20, 3, 3, 0.8, 0.006)
	model := soil.NewTwoLayer(0.005, 0.016, 1.2)
	res, err := Analyze(g, model, Config{GPR: 10_000, MaxElemLen: 2,
		BEM: bem.Options{GaussOrder: 6, SeriesTol: 1e-9}})
	if err != nil {
		t.Fatal(err)
	}
	el := res.Mesh.Elements[3]
	// Potential on the conductor surface should recover the GPR.
	p := el.Seg.Midpoint().Add(geom.V(0, 0, -el.Radius))
	v := res.PotentialAt(p)
	if math.Abs(v-10_000)/10_000 > 0.05 {
		t.Errorf("V on electrode = %v, want 10000", v)
	}
}

func TestWriteReport(t *testing.T) {
	g := grid.RectMesh(0, 0, 10, 10, 2, 2, 0.8, 0.006)
	res, err := Analyze(g, soil.NewUniform(0.02), Config{GPR: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := res.WriteReport(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"equivalent resistance", "uniform soil", "degrees of freedom"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestPredictedSpeedup(t *testing.T) {
	g := grid.RectMesh(0, 0, 30, 30, 5, 5, 0.8, 0.006)
	model := soil.NewTwoLayer(0.005, 0.016, 1.0)
	res, err := Analyze(g, model, Config{BEM: bem.Options{Workers: 4}})
	if err != nil {
		t.Fatal(err)
	}
	s := res.PredictedSpeedup()
	if s < 1 || s > 4.2 {
		t.Errorf("predicted speedup = %v with 4 workers", s)
	}
	// Sequential run predicts 1.
	seq, err := Analyze(g, model, Config{BEM: bem.Options{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if sp := seq.PredictedSpeedup(); sp != 1 {
		t.Errorf("sequential predicted speedup = %v", sp)
	}
}

func TestInvalidConfigs(t *testing.T) {
	g := grid.RectMesh(0, 0, 10, 10, 2, 2, 0.8, 0.006)
	if _, err := Analyze(g, soil.NewUniform(0.02), Config{GPR: -5}); err == nil {
		t.Error("negative GPR accepted")
	}
	if _, err := Analyze(g, soil.NewUniform(0.02), Config{Solver: SolverKind(99)}); err == nil {
		t.Error("unknown solver accepted")
	}
	if _, err := Analyze(&grid.Grid{}, soil.NewUniform(0.02), Config{}); err == nil {
		t.Error("empty grid accepted")
	}
}

func TestBondingWarning(t *testing.T) {
	g := grid.RectMesh(0, 0, 10, 10, 2, 2, 0.8, 0.006)
	g.AddRod(30, 30, 0.8, 2, 0.007) // floating, far from the grid
	res, err := Analyze(g, soil.NewUniform(0.02), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Warnings) != 1 || !strings.Contains(res.Warnings[0], "disconnected") {
		t.Errorf("warnings = %v", res.Warnings)
	}
	var sb strings.Builder
	if err := res.WriteReport(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "WARNING") {
		t.Error("report does not surface the warning")
	}
	// A bonded grid carries no warnings.
	clean, err := Analyze(grid.RectMesh(0, 0, 10, 10, 2, 2, 0.8, 0.006), soil.NewUniform(0.02), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(clean.Warnings) != 0 {
		t.Errorf("unexpected warnings: %v", clean.Warnings)
	}
}

func TestSolverKindString(t *testing.T) {
	if PCG.String() != "pcg" || Cholesky.String() != "cholesky" {
		t.Error("SolverKind strings wrong")
	}
}
