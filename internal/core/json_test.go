package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"earthing/internal/bem"
	"earthing/internal/grid"
	"earthing/internal/soil"
)

func TestWriteJSONRoundTrip(t *testing.T) {
	g := grid.RectMesh(0, 0, 20, 20, 3, 3, 0.8, 0.006)
	res, err := Analyze(g, soil.NewTwoLayer(0.005, 0.016, 1.0), Config{
		GPR: 10_000,
		BEM: bem.Options{Workers: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var rep JSONReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if rep.ReqOhms != res.Req || rep.CurrentAmps != res.Current || rep.GPRVolts != 10_000 {
		t.Errorf("report fields wrong: %+v", rep)
	}
	if rep.Elements != len(res.Mesh.Elements) || rep.DoF != res.Mesh.NumDoF {
		t.Errorf("mesh fields wrong: %+v", rep)
	}
	if rep.Timings.MatrixGenNS <= 0 || rep.Timings.TotalNS < rep.Timings.MatrixGenNS {
		t.Errorf("timings wrong: %+v", rep.Timings)
	}
	if rep.CGIterations <= 0 {
		t.Errorf("CG iterations missing: %+v", rep)
	}
	if rep.Workers != 4 || rep.PredictedSpeedup <= 0 {
		t.Errorf("parallel fields wrong: %+v", rep)
	}
	if rep.ElementKind != "linear" {
		t.Errorf("element kind %q", rep.ElementKind)
	}
}

func TestJSONSequentialOmitsParallelFields(t *testing.T) {
	g := grid.RectMesh(0, 0, 10, 10, 2, 2, 0.8, 0.006)
	res, err := Analyze(g, soil.NewUniform(0.02), Config{BEM: bem.Options{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte("predictedSpeedup")) {
		t.Error("sequential report should omit predictedSpeedup")
	}
}
