package core

import (
	"fmt"
	"math"

	"earthing/internal/linalg"
)

// Health-check reasons reported by HealthError.
const (
	// HealthNonFiniteSystem: the assembled Galerkin matrix or load vector
	// contains NaN/±Inf — a poisoned or numerically broken assembly.
	HealthNonFiniteSystem = "non-finite system"
	// HealthNonFiniteSolution: the solver produced NaN/±Inf densities.
	HealthNonFiniteSolution = "non-finite solution"
	// HealthIndefinite: the system is not positive definite, so the
	// Galerkin property is violated (degenerate discretization or poison).
	HealthIndefinite = "indefinite system"
	// HealthIllConditioned: the 2-norm condition estimate exceeds the
	// configured limit; the solution digits cannot be trusted.
	HealthIllConditioned = "ill-conditioned system"
)

// HealthError reports a failed numerical health check of an analysis run
// with Config.HealthCheck enabled: the pipeline refuses to serve a solution
// it can show to be garbage (poisoned values, indefinite or hopelessly
// ill-conditioned systems) and returns this typed error instead.
type HealthError struct {
	// Reason is one of the Health* constants.
	Reason string
	// Condition is the 2-norm condition estimate when it caused or
	// accompanied the failure (0 when not computed).
	Condition float64
	// Detail pins the first offending quantity (an index and value).
	Detail string
}

// Error implements error.
func (e *HealthError) Error() string {
	msg := "core: health check: " + e.Reason
	if e.Detail != "" {
		msg += ": " + e.Detail
	}
	if e.Condition > 0 {
		msg += fmt.Sprintf(" (condition estimate %.3g)", e.Condition)
	}
	return msg
}

// condLimit resolves the configured condition-number failure threshold.
func condLimit(cfg Config) float64 {
	if cfg.CondLimit > 0 {
		return cfg.CondLimit
	}
	return defaultCondLimit
}

// defaultCondLimit fails systems with fewer than ~4 trustworthy digits in
// float64; defaultCondWarnDiv marks the warning band below it.
const (
	defaultCondLimit   = 1e12
	defaultCondWarnDiv = 1e4
)

// preSolveHealth guards the solve stage: a non-finite system must not reach
// the factorization, where it would surface as a confusing solver error (or
// worse, converge to garbage).
func preSolveHealth(r *linalg.SymMatrix, nu []float64) error {
	if !r.AllFinite() {
		return &HealthError{Reason: HealthNonFiniteSystem, Detail: "system matrix contains NaN or Inf"}
	}
	for i, v := range nu {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return &HealthError{Reason: HealthNonFiniteSystem, Detail: fmt.Sprintf("load vector entry %d = %g", i, v)}
		}
	}
	return nil
}

// postSolveHealth validates the solved density vector and estimates the
// system's conditioning. Condition numbers above the limit fail the
// analysis; the band within limit/1e4 of it appends a warning and lets the
// result through — degraded, flagged, but usable. The estimate is recorded
// on the Result either way. ch, when non-nil, is a Cholesky factorization of
// r left over from the solve stage: the estimate then reuses it (and its
// cache) instead of refactoring the system — for direct-solver analyses the
// health check costs only the power iteration.
func postSolveHealth(res *Result, r *linalg.SymMatrix, cfg Config, ch *linalg.Cholesky) error {
	for i, v := range res.Sigma {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return &HealthError{Reason: HealthNonFiniteSolution, Detail: fmt.Sprintf("sigma[%d] = %g", i, v)}
		}
	}
	var cond float64
	var err error
	if ch != nil {
		cond, err = ch.ConditionEstimate(r, 0)
	} else {
		cond, err = linalg.ConditionEstimate(r, 0)
	}
	if err != nil {
		return &HealthError{Reason: HealthIndefinite, Detail: err.Error()}
	}
	res.Condition = cond
	limit := condLimit(cfg)
	if cond > limit || math.IsInf(cond, 1) || math.IsNaN(cond) {
		return &HealthError{Reason: HealthIllConditioned, Condition: cond,
			Detail: fmt.Sprintf("limit %.3g", limit)}
	}
	if cond > limit/defaultCondWarnDiv {
		res.Warnings = append(res.Warnings, fmt.Sprintf(
			"core: health check: condition estimate %.3g within 10^4 of the limit %.3g; results carry few trustworthy digits", cond, limit))
	}
	return nil
}
