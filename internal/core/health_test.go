package core

import (
	"errors"
	"math"
	"strings"
	"testing"

	"earthing/internal/faultinject"
	"earthing/internal/grid"
	"earthing/internal/soil"
)

func healthyConfig() Config {
	return Config{HealthCheck: true}
}

// TestHealthCheckPassesCleanRun: a sane scenario passes the health checks,
// records a finite condition estimate and matches the unchecked run exactly.
func TestHealthCheckPassesCleanRun(t *testing.T) {
	g := grid.RectMesh(0, 0, 15, 15, 2, 2, 0.8, 0.006)
	model := soil.NewUniform(0.02)
	checked, err := Analyze(g, model, healthyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if checked.Condition <= 1 || math.IsInf(checked.Condition, 0) {
		t.Errorf("Condition = %v, want a finite estimate > 1", checked.Condition)
	}
	plain, err := Analyze(g, model, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if checked.Req != plain.Req {
		t.Errorf("health-checked Req %v differs from unchecked %v", checked.Req, plain.Req)
	}
	for i := range checked.Sigma {
		if checked.Sigma[i] != plain.Sigma[i] {
			t.Fatalf("sigma[%d] differs between checked and unchecked runs", i)
		}
	}
	if len(checked.Warnings) != len(plain.Warnings) {
		t.Errorf("health check added warnings to a well-conditioned system: %v", checked.Warnings)
	}
}

// TestHealthCheckCatchesPoisonedSystem: a NaN injected into the load vector
// through the Solve fault point surfaces as a typed pre-solve HealthError
// instead of a solver failure or a garbage result.
func TestHealthCheckCatchesPoisonedSystem(t *testing.T) {
	defer faultinject.Set(faultinject.Solve, faultinject.PoisonNaN())()
	g := grid.RectMesh(0, 0, 15, 15, 2, 2, 0.8, 0.006)
	_, err := Analyze(g, soil.NewUniform(0.02), healthyConfig())
	var he *HealthError
	if !errors.As(err, &he) {
		t.Fatalf("err = %v, want *HealthError", err)
	}
	if he.Reason != HealthNonFiniteSystem {
		t.Errorf("Reason = %q, want %q", he.Reason, HealthNonFiniteSystem)
	}
}

// TestHealthCheckUnguardedPoisonPassesThrough documents the hazard the checks
// exist for: without HealthCheck the same poisoned system reaches the solver
// and fails with an untyped (or misleading) error — or not at all.
func TestHealthCheckUnguardedPoisonPassesThrough(t *testing.T) {
	defer faultinject.Set(faultinject.Solve, faultinject.PoisonNaN())()
	g := grid.RectMesh(0, 0, 15, 15, 2, 2, 0.8, 0.006)
	_, err := Analyze(g, soil.NewUniform(0.02), Config{})
	var he *HealthError
	if errors.As(err, &he) {
		t.Fatalf("unchecked run returned *HealthError %v; checks should be opt-in", he)
	}
}

// TestHealthCheckIllConditioned: a condition limit below the system's actual
// estimate fails the analysis with HealthIllConditioned, and a limit just
// above it passes with a degradation warning.
func TestHealthCheckIllConditioned(t *testing.T) {
	g := grid.RectMesh(0, 0, 15, 15, 2, 2, 0.8, 0.006)
	model := soil.NewUniform(0.02)
	base, err := Analyze(g, model, healthyConfig())
	if err != nil {
		t.Fatal(err)
	}

	cfg := healthyConfig()
	cfg.CondLimit = base.Condition / 2
	_, err = Analyze(g, model, cfg)
	var he *HealthError
	if !errors.As(err, &he) {
		t.Fatalf("err = %v, want *HealthError", err)
	}
	if he.Reason != HealthIllConditioned {
		t.Errorf("Reason = %q, want %q", he.Reason, HealthIllConditioned)
	}
	if he.Condition != base.Condition {
		t.Errorf("HealthError.Condition = %v, want %v", he.Condition, base.Condition)
	}

	cfg.CondLimit = base.Condition * 2 // within the 10⁴ warning band
	warned, err := Analyze(g, model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(warned.Warnings) == 0 {
		t.Error("no degradation warning despite condition estimate near the limit")
	}
}

// TestHealthErrorMessage pins the diagnostic format.
func TestHealthErrorMessage(t *testing.T) {
	e := &HealthError{Reason: HealthIllConditioned, Condition: 3.14e13, Detail: "limit 1e+12"}
	for _, want := range []string{"health check", HealthIllConditioned, "3.14e+13", "limit"} {
		if got := e.Error(); !strings.Contains(got, want) {
			t.Errorf("Error() = %q, missing %q", got, want)
		}
	}
}
