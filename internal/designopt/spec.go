// Package designopt is the grid-synthesis engine that closes the paper's
// design loop: it searches layout parameters — lattice density per direction,
// perimeter rod count, burial depth — to minimize copper cost subject to the
// IEEE Std 80 touch/step/mesh limits, evaluating each candidate population as
// one multi-grid sweep batch on the shared worker pool.
//
// The search wraps optimize.NelderMead in a penalty method: every candidate's
// objective is its material cost inflated by a weighted term in the relative
// limit excesses, so infeasible layouts are ranked (closer to safe is better)
// instead of rejected, and the simplex can walk through the infeasible region
// toward the cheap feasible boundary. Candidates are quantized to the integer
// lattice/rod counts and a discrete depth step before evaluation; the
// quantization makes nearby simplex points collide, and collisions are served
// from an evaluation cache instead of re-solved — that cache plus the sweep's
// own reuse tiers is what turns "thousands of objective calls" into a few
// hundred solves.
//
// Determinism: a fixed (Seed, Starts, bounds) tuple reproduces the search
// bit-for-bit at any worker count. Candidate results are bit-identical across
// workers (the solver and raster contracts), the multi-start collector runs
// the K starts in lockstep rounds whose batch composition is a pure function
// of the replies so far, and batches are evaluated in sorted candidate order
// — no wall-clock or scheduling dependence anywhere in the loop.
package designopt

import (
	"errors"
	"fmt"
	"math"

	"earthing/internal/grid"
	"earthing/internal/post"
	"earthing/internal/safety"
	"earthing/internal/soil"
)

// Spec is the design problem: the site, the soil, the fault, the safety
// criteria, and the bounds of the layout family searched.
type Spec struct {
	// Width, Height are the substation plan dimensions in metres (required).
	Width, Height float64
	// Model is the layered soil model (required).
	Model soil.Model
	// FaultCurrent is the design single-line-to-ground fault current in A
	// (required); each candidate's GPR under it drives the voltage checks.
	FaultCurrent float64
	// Safety holds the IEEE Std 80 criteria (required; validated upfront).
	Safety safety.Criteria

	// ConductorRadius is the lattice conductor radius in m (default 0.006).
	ConductorRadius float64
	// RodLength, RodRadius size the perimeter rods (defaults 3 m, 0.007 m).
	RodLength, RodRadius float64

	// MinLines, MaxLines bound the lattice line count per direction
	// (defaults 2 and 14; candidates quantize to integers inside).
	MinLines, MaxLines int
	// MaxRods bounds the perimeter rod count (default 12; zero rods is
	// always allowed).
	MaxRods int
	// MinDepth, MaxDepth bound the burial depth in m (defaults 0.4, 1.2).
	MinDepth, MaxDepth float64
	// DepthStep is the depth quantization in m (default 0.05): candidate
	// depths snap to MinDepth + k·DepthStep, which is what makes distinct
	// simplex points collide onto cached evaluations.
	DepthStep float64

	// ConductorCost, RodCost weight the cost objective per metre of lattice
	// conductor and per metre of rod (defaults 1 and 1.5 — rods price above
	// plain conductor for the driving and couplers).
	ConductorCost, RodCost float64

	// VoltageRes is the surface sampling resolution in metres for the
	// touch/step extraction (default 1, the IEEE step distance).
	VoltageRes float64
}

// withDefaults validates the spec and fills the documented defaults.
func (s Spec) withDefaults() (Spec, error) {
	if s.Width <= 0 || s.Height <= 0 {
		return s, errors.New("designopt: non-positive plan dimensions")
	}
	if s.Model == nil {
		return s, errors.New("designopt: nil soil model")
	}
	if s.FaultCurrent <= 0 || math.IsNaN(s.FaultCurrent) || math.IsInf(s.FaultCurrent, 0) {
		return s, fmt.Errorf("designopt: invalid fault current %g", s.FaultCurrent)
	}
	if err := s.Safety.Validate(); err != nil {
		return s, err
	}
	if s.ConductorRadius <= 0 {
		s.ConductorRadius = 0.006
	}
	if s.RodLength <= 0 {
		s.RodLength = 3
	}
	if s.RodRadius <= 0 {
		s.RodRadius = 0.007
	}
	if s.MinLines < 2 {
		s.MinLines = 2
	}
	if s.MaxLines < s.MinLines {
		s.MaxLines = s.MinLines + 12
	}
	if s.MaxRods < 0 {
		return s, fmt.Errorf("designopt: negative MaxRods %d", s.MaxRods)
	}
	if s.MaxRods == 0 {
		s.MaxRods = 12
	}
	if s.MinDepth <= 0 {
		s.MinDepth = 0.4
	}
	if s.MaxDepth < s.MinDepth {
		s.MaxDepth = s.MinDepth + 0.8
	}
	if s.DepthStep <= 0 {
		s.DepthStep = 0.05
	}
	if s.ConductorCost <= 0 {
		s.ConductorCost = 1
	}
	if s.RodCost <= 0 {
		s.RodCost = 1.5
	}
	if s.VoltageRes <= 0 {
		s.VoltageRes = 1
	}
	return s, nil
}

// candidate is one quantized point of the search space.
type candidate struct {
	nx, ny, rods int
	depth        float64
}

// key is the candidate's cache identity: quantized coordinates only.
func (c candidate) key() string {
	return fmt.Sprintf("%dx%d r%d d%.4f", c.nx, c.ny, c.rods, c.depth)
}

// quantize snaps a continuous search point onto the candidate lattice.
func (s Spec) quantize(x []float64) candidate {
	clampInt := func(v float64, lo, hi int) int {
		n := int(math.Round(v))
		if n < lo {
			return lo
		}
		if n > hi {
			return hi
		}
		return n
	}
	d := s.MinDepth + math.Round((x[3]-s.MinDepth)/s.DepthStep)*s.DepthStep
	if d < s.MinDepth {
		d = s.MinDepth
	}
	if d > s.MaxDepth {
		d = s.MaxDepth
	}
	return candidate{
		nx:    clampInt(x[0], s.MinLines, s.MaxLines),
		ny:    clampInt(x[1], s.MinLines, s.MaxLines),
		rods:  clampInt(x[2], 0, s.MaxRods),
		depth: d,
	}
}

// bounds returns the continuous box the simplex moves in.
func (s Spec) bounds() (lo, hi []float64) {
	lo = []float64{float64(s.MinLines), float64(s.MinLines), 0, s.MinDepth}
	hi = []float64{float64(s.MaxLines), float64(s.MaxLines), float64(s.MaxRods), s.MaxDepth}
	return lo, hi
}

// buildGrid materializes the candidate layout: an nx×ny lattice over the
// site with rods spaced evenly along the perimeter (deterministic placement —
// rod positions are a pure function of the count).
func (s Spec) buildGrid(c candidate) *grid.Grid {
	g := grid.RectMesh(0, 0, s.Width, s.Height, c.nx, c.ny, c.depth, s.ConductorRadius)
	g.Name = c.key()
	perim := 2 * (s.Width + s.Height)
	for k := 0; k < c.rods; k++ {
		x, y := perimeterPoint(s.Width, s.Height, perim*float64(k)/float64(c.rods))
		g.AddRod(x, y, c.depth, s.RodLength, s.RodRadius)
	}
	return g
}

// perimeterPoint walks distance t along the rectangle perimeter from the
// origin corner, counter-clockwise.
func perimeterPoint(w, h, t float64) (x, y float64) {
	switch {
	case t < w:
		return t, 0
	case t < w+h:
		return w, t - w
	case t < 2*w+h:
		return w - (t - w - h), h
	default:
		return 0, h - (t - 2*w - h)
	}
}

// cost is the copper objective in cost units: lattice length at the
// conductor price plus rod length at the rod price.
func (s Spec) cost(c candidate, g *grid.Grid) float64 {
	rodLen := float64(c.rods) * s.RodLength
	return (g.TotalLength()-rodLen)*s.ConductorCost + rodLen*s.RodCost
}

// Design is one scored candidate layout.
type Design struct {
	// NX, NY are the lattice line counts per direction.
	NX int `json:"nx"`
	NY int `json:"ny"`
	// Rods is the perimeter rod count.
	Rods int `json:"rods"`
	// Depth is the burial depth in m.
	Depth float64 `json:"depth"`
	// Grid is the materialized layout (not serialized).
	Grid *grid.Grid `json:"-"`
	// Cost is the copper cost the search minimizes.
	Cost float64 `json:"cost"`
	// Objective is Cost inflated by the constraint penalty; equal to Cost
	// for feasible designs.
	Objective float64 `json:"objective"`
	// Feasible reports whether every IEEE Std 80 criterion passed.
	Feasible bool `json:"feasible"`
	// Req is the equivalent resistance in Ω; GPR = Req·FaultCurrent in V.
	Req float64 `json:"req_ohm"`
	GPR float64 `json:"gpr_v"`
	// Voltages carries the extracted touch/step/mesh maxima at the fault GPR.
	Voltages post.Voltages `json:"voltages"`
	// Verdict is the IEEE Std 80 comparison of Voltages against the limits.
	Verdict safety.Verdict `json:"verdict"`
}

// better ranks designs: feasible beats infeasible, then lower objective,
// then the candidate key as a deterministic tie-break. This is the order the
// streamed best-so-far sequence is monotone under.
func better(a Design, aKey string, b Design, bKey string) bool {
	if a.Feasible != b.Feasible {
		return a.Feasible
	}
	//lint:ignore floatcmp exact objective tie falls through to the deterministic key tie-break
	if a.Objective != b.Objective {
		return a.Objective < b.Objective
	}
	return aKey < bKey
}
