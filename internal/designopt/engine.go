package designopt

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"earthing/internal/core"
	"earthing/internal/faultinject"
	"earthing/internal/optimize"
	"earthing/internal/post"
	"earthing/internal/sweep"
)

// failPenalty is the finite objective of a candidate whose evaluation failed
// (contained panic, health failure, poisoned values). Finite on purpose:
// optimize.NelderMead rejects NaN/Inf starts and its simplex arithmetic
// assumes finite values, so a poisoned candidate must rank terribly rather
// than derail the descent.
const failPenalty = 1e12

// Options configures a search. The zero value selects the defaults
// documented per field.
type Options struct {
	// Config carries the discretization/solver/BEM knobs for the candidate
	// analyses; its GPR is ignored (candidates solve at unit GPR and rescale
	// through the fault current).
	Config core.Config
	// Starts is the multi-start count: that many Nelder–Mead descents run in
	// lockstep, their evaluation requests batched per round (default 4).
	Starts int
	// Seed drives the deterministic start-point generator (default 1).
	Seed int64
	// MaxEvals bounds the total objective requests across all starts
	// (default 250 per start). Requests served from the evaluation cache
	// count toward the bound but cost no solve.
	MaxEvals int
	// PenaltyWeight scales the constraint penalty: objective =
	// cost·(1 + w·(p + p²)) with p the summed relative limit excesses
	// (default 20 — an excess of 1 % already costs ≈20 % of the design,
	// dominating the cost gap between adjacent lattice densities).
	PenaltyWeight float64
	// TolF, TolX forward to optimize.Options (defaults 1e-6, 1e-3 — the
	// quantized landscape is piecewise constant, so tight tolerances only
	// burn budget).
	TolF, TolX float64
}

func (o Options) withDefaults() Options {
	if o.Starts <= 0 {
		o.Starts = 4
	}
	if o.MaxEvals <= 0 {
		o.MaxEvals = 250 * o.Starts
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.PenaltyWeight <= 0 {
		o.PenaltyWeight = 20
	}
	if o.TolF <= 0 {
		o.TolF = 1e-6
	}
	if o.TolX <= 0 {
		o.TolX = 1e-3
	}
	return o
}

// Stats counts the search's work.
type Stats struct {
	// Generations is the number of lockstep evaluation rounds.
	Generations int `json:"generations"`
	// Requested is the total objective calls issued by the starts.
	Requested int `json:"requested"`
	// Evaluated is the number of unique candidates actually solved — the
	// denominator of the "thousands of solves per request" claim.
	Evaluated int `json:"evaluated"`
	// CacheHits is Requested − Evaluated: objective calls served without a
	// solve (quantization collisions and cross-start revisits).
	CacheHits int `json:"cache_hits"`
	// HitRate is CacheHits/Requested.
	HitRate float64 `json:"hit_rate"`
	// Failed counts candidates whose evaluation failed and scored
	// failPenalty (fault containment: they rank last, the search continues).
	Failed int `json:"failed"`
	// Starts echoes the multi-start count; Converged counts the descents
	// that met the simplex tolerances within budget.
	Starts    int `json:"starts"`
	Converged int `json:"converged"`
}

// Progress is one streamed search update: the incumbent best design after a
// generation that improved it.
type Progress struct {
	// Generation is the lockstep round ordinal (1-based).
	Generation int `json:"generation"`
	// Evaluated, CacheHits, Failed are cumulative counts at emission time.
	Evaluated int `json:"evaluated"`
	CacheHits int `json:"cache_hits"`
	Failed    int `json:"failed"`
	// Best is the incumbent best design (monotonically improving under the
	// feasible-first, cheapest-first order).
	Best Design `json:"best"`
}

// ErrNoFeasible is returned by Run/Stream when the search finished but no
// evaluated candidate met every safety criterion; the best infeasible design
// is still returned alongside it.
var ErrNoFeasible = errors.New("designopt: no feasible design found in the search budget")

// ErrAllFailed is returned when every candidate evaluation failed — there is
// no design to report at all.
var ErrAllFailed = errors.New("designopt: every candidate evaluation failed")

// evalEntry is one cached candidate outcome.
type evalEntry struct {
	objective float64
	design    Design
	failed    bool
}

// evalReq is one objective call in flight: a start blocked on reply.
type evalReq struct {
	cand  candidate
	reply chan float64
}

// event is what a start goroutine sends the collector: an evaluation request,
// or (req == nil) its terminal Nelder–Mead result.
type event struct {
	req       *evalReq
	converged bool
}

// Run executes the search and returns the best design found, the work
// counters, and an error. The design is non-nil whenever at least one
// candidate scored — including under ErrNoFeasible, where it is the best
// infeasible layout (closest to safe).
func Run(ctx context.Context, spec Spec, opt Options) (*Design, Stats, error) {
	return Stream(ctx, spec, opt, nil)
}

// Stream is Run with incremental progress: emit is called (serialized, from
// one goroutine) after every generation that improves the incumbent best.
// An emit error aborts the search and is returned. A nil emit streams
// nothing.
//
// The search is bit-reproducible: fixed Spec+Options produce the same
// generations, the same designs and the same Stats at any Config.BEM.Workers
// setting.
func Stream(ctx context.Context, spec Spec, opt Options, emit func(Progress) error) (*Design, Stats, error) {
	spec, err := spec.withDefaults()
	if err != nil {
		return nil, Stats{}, err
	}
	opt = opt.withDefaults()
	e := &engine{
		spec:  spec,
		opt:   opt,
		cache: map[string]*evalEntry{},
		emit:  emit,
	}
	e.cfg = opt.Config
	e.cfg.GPR = 1
	e.stats.Starts = opt.Starts
	return e.search(ctx)
}

// engine is one search's state; the collector goroutine owns all of it.
type engine struct {
	spec  Spec
	opt   Options
	cfg   core.Config
	cache map[string]*evalEntry
	stats Stats
	emit  func(Progress) error

	best    *Design
	bestKey string
}

// search runs the lockstep multi-start loop.
func (e *engine) search(ctx context.Context) (*Design, Stats, error) {
	lo, hi := e.spec.bounds()
	events := make(chan event, e.opt.Starts)
	nmOpt := optimize.Options{
		MaxIter: e.opt.MaxEvals / e.opt.Starts,
		TolF:    e.opt.TolF,
		TolX:    e.opt.TolX,
	}

	// Deterministic start points: the box center first (the "obvious"
	// mid-density design), then seeded uniform draws. The rng is consumed in
	// a fixed order, so the start set is a pure function of (Seed, Starts).
	rng := rand.New(rand.NewSource(e.opt.Seed))
	starts := make([][]float64, e.opt.Starts)
	for s := range starts {
		x := make([]float64, len(lo))
		for j := range x {
			if s == 0 {
				x[j] = lo[j] + 0.5*(hi[j]-lo[j])
			} else {
				x[j] = lo[j] + rng.Float64()*(hi[j]-lo[j])
			}
		}
		starts[s] = x
	}

	for s := 0; s < e.opt.Starts; s++ {
		go func(x0 []float64) {
			obj := func(x []float64) float64 {
				req := &evalReq{cand: e.spec.quantize(x), reply: make(chan float64, 1)}
				events <- event{req: req}
				return <-req.reply
			}
			wrapped, _, toU := optimize.Bounded(obj, lo, hi)
			res, err := optimize.NelderMead(wrapped, toU(x0), nmOpt)
			events <- event{converged: err == nil && res.Converged}
		}(starts[s])
	}

	// The lockstep collector. Every alive start is, between rounds, either
	// blocked on a reply or about to send its terminal event — so collecting
	// exactly `alive` events per round drains one objective call (or exit)
	// from each, and the round's batch composition depends only on the reply
	// values so far, never on goroutine scheduling.
	alive := e.opt.Starts
	cancelled := false
	var searchErr error
	for alive > 0 {
		pending := make([]*evalReq, 0, alive)
		for n := alive; n > 0; n-- {
			ev := <-events
			if ev.req != nil {
				pending = append(pending, ev.req)
				continue
			}
			alive--
			if ev.converged {
				e.stats.Converged++
			}
		}
		if len(pending) == 0 {
			continue
		}
		e.stats.Generations++
		e.stats.Requested += len(pending)

		if !cancelled && ctx.Err() != nil {
			cancelled = true
			if searchErr == nil {
				searchErr = ctx.Err()
			}
		}
		if !cancelled && searchErr == nil {
			if err := e.evaluateRound(ctx, pending); err != nil {
				if ctx.Err() != nil {
					cancelled = true
					if searchErr == nil {
						searchErr = err
					}
				} else {
					searchErr = err
					cancelled = true
				}
			}
		}

		// Reply every pending call from the cache; after cancellation or a
		// hard error the un-evaluated remainder scores failPenalty so the
		// descents terminate quickly without further solves.
		for _, req := range pending {
			if ent, ok := e.cache[req.cand.key()]; ok {
				req.reply <- ent.objective
			} else {
				req.reply <- failPenalty
			}
		}
	}

	e.stats.CacheHits = e.stats.Requested - e.stats.Evaluated
	if e.stats.Requested > 0 {
		e.stats.HitRate = float64(e.stats.CacheHits) / float64(e.stats.Requested)
	}
	if searchErr != nil {
		return e.best, e.stats, searchErr
	}
	if e.best == nil {
		if e.stats.Evaluated > 0 {
			return nil, e.stats, ErrAllFailed
		}
		return nil, e.stats, fmt.Errorf("designopt: no candidates evaluated")
	}
	if !e.best.Feasible {
		return e.best, e.stats, ErrNoFeasible
	}
	return e.best, e.stats, nil
}

// evaluateRound solves the round's unique uncached candidates as one sweep
// batch, scores them, updates the incumbent and streams progress on
// improvement.
func (e *engine) evaluateRound(ctx context.Context, pending []*evalReq) error {
	// Unique uncached candidate keys, sorted: the batch order (and with it
	// the evaluation ordinals, the stats and the emitted stream) is a pure
	// function of the requested set.
	fresh := map[string]candidate{}
	for _, req := range pending {
		k := req.cand.key()
		if _, done := e.cache[k]; !done {
			fresh[k] = req.cand
		}
	}
	if len(fresh) == 0 {
		return nil
	}
	keys := make([]string, 0, len(fresh))
	for k := range fresh {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	grids := make([]*Design, len(keys))
	scens := make([]sweep.Scenario, len(keys))
	for i, k := range keys {
		c := fresh[k]
		g := e.spec.buildGrid(c)
		grids[i] = &Design{NX: c.nx, NY: c.ny, Rods: c.rods, Depth: c.depth, Grid: g}
		scens[i] = sweep.Scenario{ID: k, Model: e.spec.Model, Grid: g}
	}
	results, err := sweep.Run(ctx, nil, scens, sweep.Options{Config: e.cfg})
	if err != nil {
		return err
	}

	improvedAny := false
	for i, k := range keys {
		ent, err := e.score(ctx, fresh[k], grids[i], results[i])
		if err != nil {
			return err
		}
		e.cache[k] = ent
		e.stats.Evaluated++
		if ent.failed {
			e.stats.Failed++
			continue
		}
		if e.best == nil || better(ent.design, k, *e.best, e.bestKey) {
			d := ent.design
			e.best, e.bestKey = &d, k
			improvedAny = true
		}
	}
	if improvedAny && e.emit != nil {
		return e.emit(Progress{
			Generation: e.stats.Generations,
			Evaluated:  e.stats.Evaluated,
			CacheHits:  e.stats.Requested - e.stats.Evaluated,
			Failed:     e.stats.Failed,
			Best:       *e.best,
		})
	}
	return nil
}

// score turns one sweep result into a cached entry, with per-candidate fault
// containment: a failed solve, a poisoned value or a panic out of the
// injection point marks this candidate failed (objective failPenalty) and the
// search continues. Only ctx cancellation propagates as an error.
func (e *engine) score(ctx context.Context, c candidate, d *Design, r sweep.Result) (ent *evalEntry, err error) {
	failed := func() *evalEntry {
		d.Objective = failPenalty
		return &evalEntry{objective: failPenalty, design: *d, failed: true}
	}
	if r.Err != nil {
		return failed(), nil
	}
	defer func() {
		if v := recover(); v != nil {
			ent, err = failed(), nil
		}
	}()

	res := r.Res
	d.Cost = e.spec.cost(c, d.Grid)
	d.Req = res.Req
	d.GPR = res.Req * e.spec.FaultCurrent
	v, err := post.ComputeVoltagesCtx(ctx, res.Assembler(), res.Mesh, res.Sigma, d.GPR, e.spec.VoltageRes,
		post.SurfaceOptions{Workers: e.cfg.BEM.Workers, Schedule: e.cfg.BEM.Schedule})
	if err != nil {
		if ctx.Err() != nil {
			return nil, err
		}
		// A contained raster panic (injected or real) fails this candidate.
		return failed(), nil
	}
	d.Voltages = v

	vals := []float64{d.Cost, v.MaxStep, v.MaxTouch, v.MaxMesh}
	if faultinject.Active() {
		faultinject.Fire(faultinject.OptimizeCandidate, e.stats.Evaluated, vals)
	}
	for _, x := range vals {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return failed(), nil
		}
	}

	verdict, err := e.spec.Safety.Check(vals[1], vals[2], vals[3])
	if err != nil {
		return nil, err // spec validated upfront; this is a programming error
	}
	d.Verdict = verdict
	d.Feasible = verdict.Safe()

	excess := func(actual, limit float64) float64 {
		if x := actual/limit - 1; x > 0 {
			return x
		}
		return 0
	}
	p := excess(verdict.StepActual, verdict.StepLimit) +
		excess(verdict.TouchActual, verdict.TouchLimit) +
		excess(verdict.MeshActual, verdict.TouchLimit)
	d.Objective = d.Cost * (1 + e.opt.PenaltyWeight*(p+p*p))
	return &evalEntry{objective: d.Objective, design: *d}, nil
}
