package designopt

import (
	"context"
	"errors"
	"math"
	"testing"

	"earthing/internal/faultinject"
)

// TestChaosOptimizePoisonedCandidate is the fault-containment contract: a
// poisoned candidate evaluation fails that one design — it scores the finite
// failPenalty and ranks last — while the search completes and still returns
// a feasible best.
func TestChaosOptimizePoisonedCandidate(t *testing.T) {
	defer faultinject.Set(faultinject.OptimizeCandidate,
		faultinject.At(2, faultinject.PoisonNaN()))()

	best, stats, err := Run(context.Background(), testSpec(), testOptions(0))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Failed != 1 {
		t.Errorf("failed candidates = %d, want exactly the poisoned one", stats.Failed)
	}
	if best == nil || !best.Feasible {
		t.Fatalf("best = %+v, want feasible design despite poisoned sibling", best)
	}
	if math.IsNaN(best.Objective) || math.IsInf(best.Objective, 0) || best.Objective >= failPenalty {
		t.Errorf("poison leaked into the best objective: %g", best.Objective)
	}
}

// TestChaosOptimizePanickingCandidate: a hook that panics at the injection
// point is contained to its candidate, not the search.
func TestChaosOptimizePanickingCandidate(t *testing.T) {
	defer faultinject.Set(faultinject.OptimizeCandidate,
		faultinject.At(1, faultinject.Panic("injected candidate panic")))()

	best, stats, err := Run(context.Background(), testSpec(), testOptions(0))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Failed != 1 {
		t.Errorf("failed candidates = %d, want exactly the panicked one", stats.Failed)
	}
	if best == nil || !best.Feasible {
		t.Fatalf("best = %+v, want feasible design despite panicking sibling", best)
	}
}

// TestChaosOptimizeAllPoisoned: when every evaluation is poisoned no design
// survives — the typed ErrAllFailed comes back instead of garbage.
func TestChaosOptimizeAllPoisoned(t *testing.T) {
	defer faultinject.Set(faultinject.OptimizeCandidate, faultinject.PoisonNaN())()

	best, stats, err := Run(context.Background(), testSpec(), testOptions(0))
	if !errors.Is(err, ErrAllFailed) {
		t.Fatalf("err = %v, want ErrAllFailed", err)
	}
	if best != nil {
		t.Errorf("best = %+v, want nil when every candidate failed", best)
	}
	if stats.Failed != stats.Evaluated || stats.Failed == 0 {
		t.Errorf("failed %d / evaluated %d, want all failed", stats.Failed, stats.Evaluated)
	}
}
