package designopt

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"testing"

	"earthing/internal/bem"
	"earthing/internal/core"
	"earthing/internal/safety"
	"earthing/internal/soil"
)

// testSpec is a small, fast design problem: a 10 m × 10 m site in uniform
// soil with a modest fault current, searched over a few dozen candidates.
// The aggressive series tolerance keeps solves cheap — the tests pin search
// mechanics and determinism, not physical accuracy.
func testSpec() Spec {
	return Spec{
		Width: 10, Height: 10,
		Model:        soil.NewUniform(0.02), // ρ = 50 Ω·m
		FaultCurrent: 100,
		Safety:       safety.Criteria{FaultDuration: 0.5, SoilRho: 50},
		MinLines:     2, MaxLines: 4,
		MaxRods:  2,
		MinDepth: 0.5, MaxDepth: 0.7, DepthStep: 0.1,
		VoltageRes: 2.5,
	}
}

func testOptions(workers int) Options {
	return Options{
		Config: core.Config{
			RodElements: 2,
			BEM:         bem.Options{Workers: workers, SeriesTol: 1e-2},
		},
		Starts:   2,
		MaxEvals: 120,
	}
}

func TestOptimizeFindsFeasibleDesign(t *testing.T) {
	var trace []Progress
	best, stats, err := Stream(context.Background(), testSpec(), testOptions(0),
		func(p Progress) error { trace = append(trace, p); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if best == nil || !best.Feasible {
		t.Fatalf("best = %+v, want feasible design", best)
	}
	if !best.Verdict.Safe() {
		t.Errorf("best verdict not safe: %s", best.Verdict)
	}
	if best.Objective != best.Cost {
		t.Errorf("feasible best: objective %g != cost %g", best.Objective, best.Cost)
	}
	if best.Grid == nil || best.Grid.TotalLength() <= 0 {
		t.Error("best design carries no grid")
	}
	if best.NX < 2 || best.NX > 4 || best.NY < 2 || best.NY > 4 ||
		best.Rods < 0 || best.Rods > 2 || best.Depth < 0.5 || best.Depth > 0.7 {
		t.Errorf("best design outside bounds: %+v", best)
	}

	// Stream invariants: at least one emission, strictly improving under the
	// feasible-first order, final emission equals the returned best.
	if len(trace) == 0 {
		t.Fatal("no progress emitted")
	}
	for i := 1; i < len(trace); i++ {
		a, b := trace[i].Best, trace[i-1].Best
		if !better(a, candidate{a.NX, a.NY, a.Rods, a.Depth}.key(),
			b, candidate{b.NX, b.NY, b.Rods, b.Depth}.key()) {
			t.Errorf("progress %d did not improve: %+v after %+v", i, a, b)
		}
	}
	final := trace[len(trace)-1].Best
	if final.Objective != best.Objective || final.NX != best.NX || final.NY != best.NY {
		t.Errorf("final progress %+v != returned best %+v", final, *best)
	}

	// Accounting: every request is a solve or a cache hit, and the quantized
	// space bounds the unique evaluations.
	if stats.Requested != stats.Evaluated+stats.CacheHits {
		t.Errorf("requested %d != evaluated %d + hits %d", stats.Requested, stats.Evaluated, stats.CacheHits)
	}
	if space := 3 * 3 * 3 * 3; stats.Evaluated > space {
		t.Errorf("evaluated %d > candidate space %d", stats.Evaluated, space)
	}
	if stats.Evaluated == 0 || stats.CacheHits == 0 {
		t.Errorf("expected both fresh evals and cache hits, got %+v", stats)
	}
	if stats.Failed != 0 {
		t.Errorf("unexpected failed candidates: %d", stats.Failed)
	}
}

// TestOptimizeDeterministicAcrossWorkers is the reproducibility contract:
// the whole search — every progress line, the final design, the counters —
// is bit-identical at any worker count.
func TestOptimizeDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) string {
		var lines []json.RawMessage
		best, stats, err := Stream(context.Background(), testSpec(), testOptions(workers),
			func(p Progress) error {
				b, err := json.Marshal(p)
				if err != nil {
					return err
				}
				lines = append(lines, b)
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		blob, err := json.Marshal(struct {
			Best  *Design
			Stats Stats
			Trace []json.RawMessage
		}{best, stats, lines})
		if err != nil {
			t.Fatal(err)
		}
		return string(blob)
	}
	base := run(1)
	for _, w := range []int{2, 4} {
		if got := run(w); got != base {
			t.Errorf("workers=%d search differs from workers=1:\n%s\nvs\n%s", w, got, base)
		}
	}
}

// TestOptimizeNoFeasible: an impossible fault current leaves every candidate
// unsafe — the search reports ErrNoFeasible and still returns the best
// (least-violating) layout.
func TestOptimizeNoFeasible(t *testing.T) {
	spec := testSpec()
	spec.FaultCurrent = 1e6
	best, stats, err := Run(context.Background(), spec, testOptions(0))
	if !errors.Is(err, ErrNoFeasible) {
		t.Fatalf("err = %v, want ErrNoFeasible", err)
	}
	if best == nil || best.Feasible {
		t.Fatalf("best = %+v, want non-nil infeasible design", best)
	}
	if best.Objective <= best.Cost {
		t.Errorf("infeasible best: objective %g not penalized above cost %g", best.Objective, best.Cost)
	}
	if stats.Evaluated == 0 {
		t.Error("no candidates evaluated")
	}
}

func TestOptimizeCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := Run(ctx, testSpec(), testOptions(0))
	if err == nil {
		t.Fatal("cancelled search returned nil error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestOptimizeSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		mod  func(*Spec)
	}{
		{"zero-width", func(s *Spec) { s.Width = 0 }},
		{"nil-model", func(s *Spec) { s.Model = nil }},
		{"zero-fault-current", func(s *Spec) { s.FaultCurrent = 0 }},
		{"nan-fault-current", func(s *Spec) { s.FaultCurrent = math.NaN() }},
		{"no-safety", func(s *Spec) { s.Safety = safety.Criteria{} }},
		{"negative-rods", func(s *Spec) { s.MaxRods = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := testSpec()
			tc.mod(&spec)
			if _, _, err := Run(context.Background(), spec, testOptions(0)); err == nil {
				t.Error("invalid spec accepted")
			}
		})
	}
}

// TestOptimizeQuantization pins the candidate encoding: rounding, clamping
// and the depth lattice.
func TestOptimizeQuantization(t *testing.T) {
	spec, err := testSpec().withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		x    []float64
		want candidate
	}{
		{[]float64{2.4, 3.6, 0.2, 0.5}, candidate{2, 4, 0, 0.5}},
		{[]float64{-5, 99, 99, 99}, candidate{2, 4, 2, 0.7}},
		{[]float64{3, 3, 1.5, 0.64}, candidate{3, 3, 2, 0.6}},
	}
	for _, tc := range cases {
		if got := spec.quantize(tc.x); got != tc.want {
			t.Errorf("quantize(%v) = %+v, want %+v", tc.x, got, tc.want)
		}
	}
	// The grid matches the encoding: rods appear in the layout and the cost
	// prices them at the rod rate.
	c := candidate{3, 3, 2, 0.6}
	g := spec.buildGrid(c)
	if g.NumRods() != 2 {
		t.Errorf("built grid has %d rods, want 2", g.NumRods())
	}
	wantCost := (g.TotalLength()-2*spec.RodLength)*spec.ConductorCost + 2*spec.RodLength*spec.RodCost
	if got := spec.cost(c, g); got != wantCost {
		t.Errorf("cost = %g, want %g", got, wantCost)
	}
}
