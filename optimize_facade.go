package earthing

import (
	"context"

	"earthing/internal/designopt"
)

// Grid-synthesis re-exports: the design-loop engine that searches layout
// parameters (lattice density, perimeter rods, burial depth) to minimize
// copper cost subject to the IEEE Std 80 limits, batching each candidate
// population through the sweep engine. See internal/designopt for the
// penalty method and the determinism contract.
type (
	// OptimizeSpec is the design problem: site, soil, fault, safety
	// criteria and layout bounds.
	OptimizeSpec = designopt.Spec
	// OptimizeOptions are the search knobs: analysis Config, multi-start
	// count, seed, evaluation budget, penalty weight.
	OptimizeOptions = designopt.Options
	// OptimizedDesign is one scored candidate layout.
	OptimizedDesign = designopt.Design
	// OptimizeProgress is one streamed best-so-far update.
	OptimizeProgress = designopt.Progress
	// OptimizeStats counts the search's work (requests, unique solves,
	// cache hits, failures).
	OptimizeStats = designopt.Stats
)

// ErrNoFeasibleOptimize is returned when the search budget found no layout
// meeting every safety criterion; the best infeasible design is still
// returned alongside it.
var ErrNoFeasibleOptimize = designopt.ErrNoFeasible

// Optimize searches the spec's layout family for the cheapest design that
// meets the IEEE Std 80 touch/step/mesh limits. Candidate populations are
// evaluated as one sweep batch per generation on the shared worker pool, and
// the search is bit-reproducible at any worker count for a fixed seed.
// Options are applied on top of opt.Config (see Option).
//
// The returned design is non-nil whenever at least one candidate scored —
// including under ErrNoFeasibleOptimize, where it is the least-violating
// layout found.
func Optimize(ctx context.Context, spec OptimizeSpec, opt OptimizeOptions, opts ...Option) (*OptimizedDesign, OptimizeStats, error) {
	opt.Config = applyOptions(opt.Config, opts).cfg
	return designopt.Run(ctx, spec, opt)
}

// OptimizeStream is Optimize with incremental delivery: emit is called
// (serialized) after every generation that improves the incumbent best, with
// the improving design and the cumulative work counters. An emit error
// aborts the search and is returned.
func OptimizeStream(ctx context.Context, spec OptimizeSpec, opt OptimizeOptions, emit func(OptimizeProgress) error, opts ...Option) (*OptimizedDesign, OptimizeStats, error) {
	opt.Config = applyOptions(opt.Config, opts).cfg
	return designopt.Stream(ctx, spec, opt, emit)
}
