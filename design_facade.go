package earthing

import (
	"earthing/internal/design"
)

// Design-search re-exports: automated grid sizing against resistance and
// IEEE Std 80 safety targets.
type (
	// DesignTargets are the acceptance criteria of a design search.
	DesignTargets = design.Targets
	// DesignSpace is the lattice family searched.
	DesignSpace = design.Space
	// DesignCandidate is one evaluated layout.
	DesignCandidate = design.Candidate
)

// ErrNoFeasibleDesign is returned when no layout in the space passes.
var ErrNoFeasibleDesign = design.ErrNoFeasibleDesign

// DesignSearch evaluates lattice densities in increasing cost order and
// returns the cheapest candidate meeting every target, plus the trace of
// all evaluated candidates.
func DesignSearch(space DesignSpace, model SoilModel, tg DesignTargets, cfg Config) (*DesignCandidate, []DesignCandidate, error) {
	return design.Search(space, model, tg, cfg)
}

// DesignEvaluate analyzes one grid against the targets.
func DesignEvaluate(g *Grid, model SoilModel, tg DesignTargets, cfg Config) (*DesignCandidate, error) {
	return design.Evaluate(g, model, tg, cfg)
}
