package earthing

// Option tweaks one analysis or sweep parameter on top of a base Config.
// Options are applied in order after the Config literal, so they win over
// the corresponding struct fields; the zero value of every knob means
// "keep whatever the Config says". They exist so call sites can name the
// one or two parameters they care about instead of threading a fully
// populated Config through every layer:
//
//	res, err := earthing.Analyze(ctx, g, model, earthing.Config{GPR: 10_000},
//		earthing.WithWorkers(8),
//		earthing.WithSchedule(earthing.Schedule{Kind: earthing.Guided, Chunk: 4}))
//
// The mapping from legacy Config fields to options is documented in
// DESIGN.md §11.
type Option func(*settings)

// settings is the resolved parameter set an Option mutates: the Config all
// analyses understand plus sweep-only switches that have no Config field.
type settings struct {
	cfg         Config
	allowScaled bool
}

func applyOptions(cfg Config, opts []Option) settings {
	s := settings{cfg: cfg}
	for _, o := range opts {
		if o != nil {
			o(&s)
		}
	}
	return s
}

// WithWorkers sets the number of workers used for matrix generation and the
// parallel solver (Config.BEM.Workers). n ≤ 0 selects GOMAXPROCS.
func WithWorkers(n int) Option {
	return func(s *settings) { s.cfg.BEM.Workers = n }
}

// WithSchedule sets the OpenMP-style loop schedule for matrix generation
// (Config.BEM.Schedule).
func WithSchedule(sch Schedule) Option {
	return func(s *settings) { s.cfg.BEM.Schedule = sch }
}

// WithGPR sets the ground potential rise in volts (Config.GPR).
func WithGPR(gpr float64) Option {
	return func(s *settings) { s.cfg.GPR = gpr }
}

// WithQuadOrder sets the Gauss-Legendre order for regular element pairs
// (Config.BEM.GaussOrder). The near-field order is left to its default
// unless the base Config sets it.
func WithQuadOrder(order int) Option {
	return func(s *settings) { s.cfg.BEM.GaussOrder = order }
}

// WithSolver selects the linear solver (Config.Solver): PCG (default),
// Cholesky (reference direct solve), CholeskyBlocked (tiled packed
// factorization, bit-identical to Cholesky) or CholeskyMixed (float32
// trailing updates + float64 iterative refinement; falls back to full
// precision when refinement cannot reach float64 accuracy).
func WithSolver(k SolverKind) Option {
	return func(s *settings) { s.cfg.Solver = k }
}

// WithFlatAssembly switches matrix generation to the flat image-series
// kernel (Config.BEM.Kernel = FlatKernel): per-depth image coefficients are
// precomputed once per (geometry, model), the per-Gauss-point geometry is
// hoisted out of the image loop, and equal-weight image groups fuse their
// logarithms into one call — 1.6–3.9× faster single-thread assembly on the
// Balaidos soil cases (DESIGN.md §13). Results agree with the default
// reference kernel to ≤ 1e-10 relative (grid resistance); keep the default
// where transcript-exact reproducibility against existing golden results
// matters.
func WithFlatAssembly() Option {
	return func(s *settings) { s.cfg.BEM.Kernel = FlatKernel }
}

// WithHealthCheck enables the numerical health checks around the solve
// stage (Config.HealthCheck): the system and solution are scanned for
// NaN/Inf and the matrix conditioning is estimated; an analysis whose
// numbers cannot be trusted fails with a typed *HealthError instead of
// serving garbage. condLimit sets the condition-estimate failure threshold
// (≤ 0 selects the default 1e12); estimates within 10⁴ of the limit pass
// with a warning on the Result.
func WithHealthCheck(condLimit float64) Option {
	return func(s *settings) {
		s.cfg.HealthCheck = true
		s.cfg.CondLimit = condLimit
	}
}

// WithHMatrix selects the compressed hierarchical-matrix solver
// (Config.Solver = SolverHMatrix) with the given block tolerance and
// admissibility parameter. eps ≤ 0 keeps the default 1e-6 (relative
// Frobenius tolerance per compressed block; the equivalent resistance
// tracks it within a small multiple). eta ≤ 0 keeps the default 2 —
// larger values compress more of the matrix at slightly higher rank.
// Leaf size, rank cap and the dense fallback threshold stay at their
// Config.HMatrix defaults unless the base Config sets them.
func WithHMatrix(eps, eta float64) Option {
	return func(s *settings) {
		s.cfg.Solver = SolverHMatrix
		s.cfg.HMatrix.Eps = eps
		s.cfg.HMatrix.Eta = eta
	}
}

// WithScaledReuse lets Sweep serve a scenario whose soil model is an exact
// proportional rescaling of an already-assembled one by scaling that
// solution instead of assembling again (σ′ = s·σ, R′ = R/s). The derivation
// is mathematically exact but not bit-identical to a fresh assembly, so it
// is opt-in; Analyze ignores it.
func WithScaledReuse() Option {
	return func(s *settings) { s.allowScaled = true }
}
