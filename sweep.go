package earthing

import (
	"context"

	"earthing/internal/sweep"
)

// SweepScenario is one variant in a batch solve: a soil model plus the
// ground potential rise to report results at. GPR ≤ 0 inherits the shared
// Config's GPR; an empty ID gets "s<index>".
type SweepScenario struct {
	ID   string
	Soil SoilModel
	GPR  float64
}

// SweepResult is one solved scenario as emitted by Sweep/SweepStream; see
// the internal/sweep package for field semantics. Results carry the reuse
// tier that produced them (SweepAssembled, SweepSolveReuse, SweepScaled,
// SweepFailed) and per-scenario assembly/solve/wall timings. A result with
// a non-nil Err (tier SweepFailed) is a per-scenario failure — a contained
// worker panic or a rejected health check — and its Res is nil; the other
// scenarios of the batch are unaffected. Always check Err before touching
// Res.
type SweepResult = sweep.Result

// SweepReuse labels how a sweep result was obtained.
type SweepReuse = sweep.Reuse

// Reuse tiers, cheapest satisfied first.
const (
	// SweepAssembled: the scenario's matrix was assembled and solved.
	SweepAssembled = sweep.ReuseAssembled
	// SweepSolveReuse: same soil model as an assembled scenario, different
	// GPR — the unit-GPR solve was rescaled (bit-identical to a fresh run).
	SweepSolveReuse = sweep.ReuseSolve
	// SweepScaled: proportional soil model, solution derived by scaling
	// (exact but not bit-identical; requires WithScaledReuse).
	SweepScaled = sweep.ReuseScaled
	// SweepFailed: the scenario's assembly job failed (worker panic or
	// health check); Result.Err carries the cause and Res is nil. The rest
	// of the batch completes normally.
	SweepFailed = sweep.ReuseFailed
)

// Sweep solves many scenario variants of one grid in a single batch,
// amortizing work the variants share: the mesh is built once per distinct
// set of soil-interface depths, each distinct soil model is assembled
// exactly once (with all assemblies interleaved on one worker pool), and
// scenarios differing only in GPR reuse the cached unit-GPR solve.
// Results are returned in scenario order and each is bit-identical to a
// sequential Analyze of that scenario at the same worker count (except the
// opt-in WithScaledReuse tier, which is exact only up to rounding).
//
// The shared cfg supplies discretization, solver and parallel options; a
// scenario's GPR overrides cfg.GPR when positive.
//
// A failure confined to one scenario's assembly or solve (a contained
// worker panic, a rejected health check) does not error the sweep: that
// scenario's Result comes back with Err set and Res nil (tier SweepFailed)
// while the rest of the batch completes.
func Sweep(ctx context.Context, g *Grid, scenarios []SweepScenario, cfg Config, opts ...Option) ([]SweepResult, error) {
	s := applyOptions(cfg, opts)
	return sweep.Run(ctx, g, toScenarios(scenarios), sweep.Options{
		Config:      s.cfg,
		AllowScaled: s.allowScaled,
	})
}

// SweepStream is Sweep with streaming delivery: emit is called once per
// scenario as soon as its result is ready, which may be out of scenario
// order (Result.Index gives the position). Emit is never called
// concurrently. A non-nil error from emit aborts the sweep and is returned
// wrapped.
func SweepStream(ctx context.Context, g *Grid, scenarios []SweepScenario, cfg Config, emit func(SweepResult) error, opts ...Option) error {
	s := applyOptions(cfg, opts)
	return sweep.Stream(ctx, g, toScenarios(scenarios), sweep.Options{
		Config:      s.cfg,
		AllowScaled: s.allowScaled,
	}, emit)
}

func toScenarios(in []SweepScenario) []sweep.Scenario {
	out := make([]sweep.Scenario, len(in))
	for i, s := range in {
		out[i] = sweep.Scenario{ID: s.ID, Model: s.Soil, GPR: s.GPR}
	}
	return out
}
