package earthing_test

import (
	"context"
	"fmt"
	"math"
	"strings"
	"testing"

	"earthing"
)

func TestFacadeEndToEnd(t *testing.T) {
	g := earthing.RectGrid(0, 0, 20, 20, 3, 3, 0.8, 0.006)
	g.AddRod(10, 10, 0.8, 2, 0.007)
	model := earthing.TwoLayerSoil(0.005, 0.016, 1.0)
	res, err := earthing.Analyze(context.Background(), g, model, earthing.Config{GPR: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Req <= 0 || res.Current <= 0 {
		t.Fatalf("Req=%v I=%v", res.Req, res.Current)
	}
	if v := res.PotentialAt(earthing.V(10, 10, 0)); v <= 0 || v > 10_000 {
		t.Errorf("potential over grid center = %v", v)
	}

	r, err := earthing.SurfacePotential(context.Background(), res, earthing.SurfaceOptions{NX: 12, NY: 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.V) != 144 {
		t.Error("raster size wrong")
	}
	lines := earthing.Contours(r, earthing.ContourLevels(r, 4))
	if len(lines) == 0 {
		t.Error("no contour lines")
	}
	v, err := earthing.ComputeVoltages(context.Background(), res, 2, earthing.SurfaceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if v.MaxTouch <= 0 {
		t.Error("no touch voltage computed")
	}
	crit := earthing.SafetyCriteria{FaultDuration: 0.5, SoilRho: 200}
	verdict, err := crit.Check(v.MaxStep, v.MaxTouch, v.MaxMesh)
	if err != nil {
		t.Fatal(err)
	}
	_ = verdict.Safe() // either outcome is legitimate for this toy grid
}

func TestFacadeGridIO(t *testing.T) {
	g := earthing.Barbera()
	var sb strings.Builder
	if err := earthing.WriteGrid(&sb, g); err != nil {
		t.Fatal(err)
	}
	back, err := earthing.ReadGrid(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Conductors) != 408 {
		t.Errorf("round trip lost conductors: %d", len(back.Conductors))
	}
	m, err := earthing.Discretize(back, earthing.Linear, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumDoF < 200 {
		t.Errorf("DoF = %d", m.NumDoF)
	}
}

func TestFacadeBuiltinsAndSoils(t *testing.T) {
	if earthing.Balaidos().NumRods() != 67 {
		t.Error("Balaidos rods wrong")
	}
	if earthing.TriangleGrid(10, 10, 3, 3, 0.8, 0.005).TotalLength() <= 0 {
		t.Error("TriangleGrid empty")
	}
	ml, err := earthing.MultiLayerSoil([]float64{0.01, 0.02, 0.05}, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if ml.NumLayers() != 3 {
		t.Error("multilayer layers wrong")
	}
	if _, err := earthing.MultiLayerSoil([]float64{0.01}, []float64{1}); err == nil {
		t.Error("bad multilayer accepted")
	}
	s, err := earthing.ParseSchedule("guided,4")
	if err != nil || s.Kind != earthing.Guided || s.Chunk != 4 {
		t.Errorf("ParseSchedule = %v, %v", s, err)
	}
}

func TestFacadeSolverAndOptions(t *testing.T) {
	g := earthing.RectGrid(0, 0, 15, 15, 2, 2, 0.8, 0.006)
	model := earthing.UniformSoil(0.02)
	a, err := earthing.Analyze(context.Background(), g, model, earthing.Config{Solver: earthing.Cholesky})
	if err != nil {
		t.Fatal(err)
	}
	b, err := earthing.Analyze(context.Background(), g, model, earthing.Config{
		Solver: earthing.PCG,
		BEM: earthing.BEMOptions{
			Workers:  2,
			Loop:     earthing.InnerLoop,
			Assembly: earthing.MutexAssemble,
			Schedule: earthing.Schedule{Kind: earthing.Guided, Chunk: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Req-b.Req) > 1e-8*(1+a.Req) {
		t.Errorf("solver/parallel variants disagree: %v vs %v", a.Req, b.Req)
	}
}

// TestFacadeSweepAndOptions exercises the batch facade: functional options
// override Config fields, results come back in scenario order, GPR-only
// variants reuse the solve, and every result is bit-identical to a
// standalone Analyze with the same settings.
func TestFacadeSweepAndOptions(t *testing.T) {
	ctx := context.Background()
	g := earthing.RectGrid(0, 0, 15, 15, 2, 2, 0.8, 0.006)
	model := earthing.UniformSoil(0.02)

	want, err := earthing.Analyze(ctx, g, model, earthing.Config{},
		earthing.WithGPR(5_000), earthing.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if want.GPR != 5_000 {
		t.Fatalf("WithGPR not applied: GPR = %v", want.GPR)
	}

	swept, err := earthing.Sweep(ctx, g, []earthing.SweepScenario{
		{ID: "a", Soil: model, GPR: 5_000},
		{ID: "b", Soil: model, GPR: 10_000},
	}, earthing.Config{}, earthing.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(swept) != 2 || swept[0].ID != "a" || swept[1].ID != "b" {
		t.Fatalf("unexpected sweep results: %+v", swept)
	}
	if swept[0].Reuse != earthing.SweepAssembled || swept[1].Reuse != earthing.SweepSolveReuse {
		t.Fatalf("reuse tiers (%q, %q), want (assembled, solve)", swept[0].Reuse, swept[1].Reuse)
	}
	if swept[0].Res.Req != want.Req || swept[0].Res.Current != want.Current {
		t.Errorf("sweep result not bit-identical to Analyze: (%v, %v) vs (%v, %v)",
			swept[0].Res.Req, swept[0].Res.Current, want.Req, want.Current)
	}
}

// ExampleAnalyze demonstrates the quickstart flow: build a grid, pick a soil
// model, analyze, and read the design parameters.
func ExampleAnalyze() {
	g := earthing.RectGrid(0, 0, 40, 40, 5, 5, 0.8, 0.006)
	model := earthing.UniformSoil(0.02) // 50 Ω·m soil
	res, err := earthing.Analyze(context.Background(), g, model, earthing.Config{GPR: 10_000})
	if err != nil {
		panic(err)
	}
	fmt.Printf("Req is positive: %v\n", res.Req > 0)
	fmt.Printf("I = GPR/Req: %v\n", math.Abs(res.Current-10_000/res.Req) < 1e-6)
	// Output:
	// Req is positive: true
	// I = GPR/Req: true
}

// ExampleFitTwoLayerSoil shows the survey-to-model pipeline: synthesize a
// Wenner sounding over a known soil and recover its parameters.
func ExampleFitTwoLayerSoil() {
	truth := earthing.TwoLayerSoil(1.0/200, 1.0/50, 2.0)
	data := earthing.SimulateSurvey(truth, earthing.SurveySpacings(0.25, 60, 12), 0, nil)
	fit, err := earthing.FitTwoLayerSoil(data, earthing.SurveyInvertOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("rho1 ≈ 200: %v\n", math.Abs(fit.Rho1-200) < 4)
	fmt.Printf("rho2 ≈ 50: %v\n", math.Abs(fit.Rho2-50) < 1)
	fmt.Printf("h ≈ 2.0: %v\n", math.Abs(fit.H-2.0) < 0.1)
	// Output:
	// rho1 ≈ 200: true
	// rho2 ≈ 50: true
	// h ≈ 2.0: true
}

// ExampleDesignSearch sizes a lattice automatically against a resistance
// target.
func ExampleDesignSearch() {
	space := earthing.DesignSpace{Width: 40, Height: 40, MinLines: 3, MaxLines: 9}
	best, trace, err := earthing.DesignSearch(space, earthing.UniformSoil(0.02),
		earthing.DesignTargets{MaxReq: 0.62}, earthing.Config{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("winner meets target: %v\n", best.Result.Req <= 0.62)
	fmt.Printf("cheaper candidates all failed: %v\n", !trace[0].Passes)
	// Output:
	// winner meets target: true
	// cheaper candidates all failed: true
}

// ExamplePotentialProfile samples the surface potential along a walking
// line — the quantity behind step-voltage checks.
func ExamplePotentialProfile() {
	g := earthing.RectGrid(0, 0, 30, 30, 4, 4, 0.8, 0.006)
	res, err := earthing.Analyze(context.Background(), g, earthing.UniformSoil(0.02), earthing.Config{GPR: 10_000})
	if err != nil {
		panic(err)
	}
	s, v := earthing.PotentialProfile(res, 15, 15, 120, 15, 40)
	fmt.Printf("%d samples from %.0f to %.0f m\n", len(s), s[0], s[len(s)-1])
	fmt.Printf("potential decays away from the grid: %v\n", v[0] > v[len(v)-1])
	// Output:
	// 40 samples from 0 to 105 m
	// potential decays away from the grid: true
}
