// Package earthing is a boundary-element solver for the analysis and design
// of substation grounding (earthing) systems in uniform and horizontally
// stratified soils, with OpenMP-style parallel matrix generation.
//
// It reproduces the method and evaluation of I. Colominas, J. Gómez,
// F. Navarrina, M. Casteleiro and J. M. Cela, "Parallel Computing Aided
// Design of Earthing Systems for Electrical Substations in Non Homogeneous
// Soil Models" (ICPP 2000): an approximated 1-D Galerkin BEM over the
// electrode axes (thin-wire hypothesis), layered-soil kernels built from
// infinite image series, a diagonal-preconditioned conjugate-gradient
// solver, and parallel generation of the dense symmetric system matrix.
//
// # Quick start
//
//	g := earthing.RectGrid(0, 0, 60, 60, 7, 7, 0.8, 0.006)
//	model := earthing.TwoLayerSoil(0.005, 0.016, 1.0) // γ1, γ2 (Ω·m)⁻¹, h (m)
//	res, err := earthing.Analyze(ctx, g, model, earthing.Config{GPR: 10_000})
//	// res.Req (Ω), res.Current (A), res.PotentialAt(...) (V)
//
// All entry points are context-first: cancellation is observed at schedule
// chunk boundaries during matrix generation and at raster-point boundaries
// during post-processing. Use context.Background() when you don't need it.
// Many scenario variants of one grid solve fastest as a batch — see Sweep.
//
// The deeper packages remain internal; everything a downstream design tool
// needs is re-exported here.
package earthing

import (
	"context"
	"io"

	"earthing/internal/bem"
	"earthing/internal/core"
	"earthing/internal/geom"
	"earthing/internal/grid"
	"earthing/internal/post"
	"earthing/internal/safety"
	"earthing/internal/sched"
	"earthing/internal/soil"
)

// Re-exported geometry types.
type (
	// Vec3 is a 3-D point; z is depth, positive downwards.
	Vec3 = geom.Vec3
	// Segment is a straight electrode axis segment.
	Segment = geom.Segment
)

// V constructs a Vec3.
func V(x, y, z float64) Vec3 { return geom.V(x, y, z) }

// Re-exported grid model.
type (
	// Grid is a grounding grid: a set of buried cylindrical conductors.
	Grid = grid.Grid
	// Conductor is one straight bare cylindrical electrode.
	Conductor = grid.Conductor
	// Mesh is a discretized grid.
	Mesh = grid.Mesh
	// ElementKind selects linear or constant leakage elements.
	ElementKind = grid.ElementKind
)

// Element kinds.
const (
	Linear   = grid.Linear
	Constant = grid.Constant
)

// RectGrid builds a rectangular grounding mesh (see grid.RectMesh).
func RectGrid(x0, y0, width, height float64, nx, ny int, depth, radius float64) *Grid {
	return grid.RectMesh(x0, y0, width, height, nx, ny, depth, radius)
}

// TriangleGrid builds a right-triangle grounding mesh (see grid.TriangleMesh).
func TriangleGrid(legX, legY float64, nx, ny int, depth, radius float64) *Grid {
	return grid.TriangleMesh(legX, legY, nx, ny, depth, radius)
}

// RectGridGraded builds a rectangular mesh with line spacings compressed
// toward the edges (grading factor beta ∈ [0, 1)), the layout practical
// designs use because leakage concentrates at the perimeter.
func RectGridGraded(x0, y0, width, height float64, nx, ny int, depth, radius, beta float64) *Grid {
	return grid.RectMeshGraded(x0, y0, width, height, nx, ny, depth, radius, beta)
}

// TriangleGridGraded is TriangleGrid with edge-compressed spacings.
func TriangleGridGraded(legX, legY float64, nx, ny int, depth, radius, beta float64) *Grid {
	return grid.TriangleMeshGraded(legX, legY, nx, ny, depth, radius, beta)
}

// Barbera returns the Barberá substation grid of the paper's Example 1.
func Barbera() *Grid { return grid.Barbera() }

// Balaidos returns the Balaidos substation grid of the paper's Example 2.
func Balaidos() *Grid { return grid.Balaidos() }

// InterconnectedGrid returns a randomized multi-substation grounding system
// of roughly n degrees of freedom: several rod-cornered lattices joined by
// tie conductors, the workload of the compressed-solver tier (WithHMatrix).
// The same (n, seed) always yields the identical geometry.
func InterconnectedGrid(n int, seed int64) *Grid { return grid.Interconnected(n, seed) }

// ReadGrid parses a grid from its text format.
func ReadGrid(r io.Reader) (*Grid, error) { return grid.Read(r) }

// WriteGrid serializes a grid to its text format.
func WriteGrid(w io.Writer, g *Grid) error { return grid.Write(w, g) }

// Discretize subdivides a grid into boundary elements (maxElemLen ≤ 0 keeps
// one element per conductor).
func Discretize(g *Grid, kind ElementKind, maxElemLen float64) (*Mesh, error) {
	return grid.Discretize(g, kind, maxElemLen)
}

// SoilModel describes a horizontally stratified soil (see internal/soil).
type SoilModel = soil.Model

// UniformSoil returns the single-layer soil model with conductivity gamma in
// (Ω·m)⁻¹.
func UniformSoil(gamma float64) SoilModel { return soil.NewUniform(gamma) }

// TwoLayerSoil returns the two-layer soil model: top layer conductivity
// gamma1 and thickness h (m) over an infinite layer of conductivity gamma2.
func TwoLayerSoil(gamma1, gamma2, h float64) SoilModel {
	return soil.NewTwoLayer(gamma1, gamma2, h)
}

// MultiLayerSoil returns the general C-layer model (numeric Hankel-transform
// kernels; much slower than UniformSoil/TwoLayerSoil).
func MultiLayerSoil(gammas, thicknesses []float64) (SoilModel, error) {
	return soil.NewMultiLayer(gammas, thicknesses)
}

// Analysis engine re-exports.
type (
	// Config configures an analysis (GPR, discretization, solver, BEM
	// parallel options).
	Config = core.Config
	// Result is a solved analysis (Req, current, potentials, timings).
	Result = core.Result
	// StageTimings holds per-pipeline-stage durations (Table 6.1).
	StageTimings = core.StageTimings
	// SolverKind selects PCG or Cholesky.
	SolverKind = core.SolverKind
	// BEMOptions configures matrix generation (workers, schedule, loop
	// strategy, series tolerance).
	BEMOptions = bem.Options
	// Schedule is an OpenMP-style loop schedule (kind + chunk).
	Schedule = sched.Schedule
	// LoopStrategy selects outer- or inner-loop parallelization.
	LoopStrategy = bem.LoopStrategy
	// AssemblyMode selects deferred or mutex elementwise assembly.
	AssemblyMode = bem.AssemblyMode
	// HealthError reports a failed numerical health check (enable with
	// WithHealthCheck or Config.HealthCheck): non-finite systems or
	// solutions, indefinite or ill-conditioned matrices. Detect with
	// errors.As.
	HealthError = core.HealthError
	// PanicError is a panic contained inside a parallel loop worker,
	// surfaced as an error with the faulting iteration, worker and stack.
	// Detect with errors.As.
	PanicError = sched.PanicError
)

// Solver kinds.
const (
	PCG = core.PCG
	// Cholesky is the reference direct solver (unblocked column sweep).
	Cholesky = core.Cholesky
	// CholeskyBlocked is the tiled packed factorization — bit-identical
	// results to Cholesky, faster on large systems.
	CholeskyBlocked = core.CholeskyBlocked
	// CholeskyMixed adds float32 trailing updates with float64 iterative
	// refinement; accuracy is validated per solve and the engine refactors in
	// full precision rather than degrade silently.
	CholeskyMixed = core.CholeskyMixed
	// SolverHMatrix compresses the system into a hierarchical matrix (ACA on
	// the admissible far field, dense near-field leaves) and solves it with
	// near-field-preconditioned conjugate gradients — O(N·log N)-ish memory
	// and time instead of the dense O(N²)/O(N³). Accuracy follows the block
	// tolerance (WithHMatrix); small systems degrade to dense PCG with a
	// warning when compression fails.
	SolverHMatrix = core.SolverHMatrix
)

// Loop strategies, assembly modes and kernel strategies.
const (
	OuterLoop         = bem.OuterLoop
	InnerLoop         = bem.InnerLoop
	StoreThenAssemble = bem.StoreThenAssemble
	MutexAssemble     = bem.MutexAssemble
	// ReferenceKernel (default) evaluates image-series inner integrals with
	// the bit-exact per-image closed forms; FlatKernel streams precomputed
	// per-depth image tables (≈2× faster single-thread, results within 1e-10
	// relative). Select with WithFlatAssembly or Config.BEM.Kernel.
	ReferenceKernel = bem.ReferenceKernel
	FlatKernel      = bem.FlatKernel
)

// Schedule kinds.
const (
	Static  = sched.Static
	Dynamic = sched.Dynamic
	Guided  = sched.Guided
)

// ParseSchedule parses labels like "dynamic,1" or "static,16".
func ParseSchedule(s string) (Schedule, error) { return sched.ParseSchedule(s) }

// Analyze runs the full pipeline — preprocessing (interface splitting,
// discretization), parallel matrix generation, solve, results — on a grid.
// The parallel matrix-generation loop observes ctx at schedule chunk
// boundaries, so an abandoned analysis stops burning cores mid-assembly;
// the error wraps ctx.Err() when cut short. Options are applied on top of
// cfg (see Option).
func Analyze(ctx context.Context, g *Grid, model SoilModel, cfg Config, opts ...Option) (*Result, error) {
	return core.AnalyzeCtx(ctx, g, model, applyOptions(cfg, opts).cfg)
}

// AnalyzeMesh analyzes an explicitly discretized mesh, with the
// cancellation semantics of Analyze.
func AnalyzeMesh(ctx context.Context, m *Mesh, model SoilModel, cfg Config, opts ...Option) (*Result, error) {
	return core.AnalyzeMeshCtx(ctx, m, model, applyOptions(cfg, opts).cfg)
}

// Rehydrate rebuilds a solved Result from a previously stored unit-GPR
// density without re-running matrix generation or the solve: only the
// deterministic preprocessing and results stages execute, so a density
// produced by Analyze of the same scenario yields bit-identical design
// parameters at a tiny fraction of the cost. This is how groundd warm-starts
// from its durable scenario store and serves entries fetched from fleet
// peers. A density that does not match the scenario's discretization (or is
// physically inconsistent) is rejected with an error.
func Rehydrate(g *Grid, model SoilModel, sigma []float64, cfg Config, opts ...Option) (*Result, error) {
	return core.Rehydrate(g, model, sigma, applyOptions(cfg, opts).cfg)
}

// AnalyzeReader parses a grid from its text format and analyzes it, with
// the cancellation semantics of Analyze.
func AnalyzeReader(ctx context.Context, r io.Reader, model SoilModel, cfg Config, opts ...Option) (*Result, error) {
	return core.AnalyzeReaderCtx(ctx, r, model, applyOptions(cfg, opts).cfg)
}

// Post-processing re-exports.
type (
	// Raster is a sampled surface scalar field.
	Raster = post.Raster
	// SurfaceOptions configures surface-potential sampling.
	SurfaceOptions = post.SurfaceOptions
	// ContourLine is one equipotential polyline.
	ContourLine = post.ContourLine
	// Voltages aggregates touch/step/mesh voltages.
	Voltages = post.Voltages
)

// SurfacePotential samples the earth-surface potential of a solved analysis
// over its grid footprint (plus margin), in volts at the configured GPR.
// Cancellation is observed at raster-point boundaries.
func SurfacePotential(ctx context.Context, res *Result, opt SurfaceOptions) (*Raster, error) {
	return post.SurfacePotentialCtx(ctx, res.Assembler(), res.Mesh, res.Sigma, res.GPR, opt)
}

// PotentialProfile samples the surface potential along a straight line.
func PotentialProfile(res *Result, x0, y0, x1, y1 float64, n int) (s, v []float64) {
	return post.ProfilePotential(res.Assembler(), res.Sigma, res.GPR, x0, y0, x1, y1, n)
}

// StepVoltageMap samples the per-metre step voltage |E_h|·1 m over the grid
// footprint (plus margin) at the configured GPR — the gradient counterpart
// of SurfacePotential, evaluated through the batched field engine.
// Cancellation is observed at raster-point boundaries.
func StepVoltageMap(ctx context.Context, res *Result, opt SurfaceOptions) (*Raster, error) {
	return post.EFieldSurfaceCtx(ctx, res.Assembler(), res.Mesh, res.Sigma, res.GPR, opt)
}

// ComputeVoltages estimates touch, step and mesh voltages from a solved
// analysis (raster resolution stepRes metres; ≤ 0 selects 1 m), with
// cooperative cancellation of the underlying raster evaluation plus
// worker/schedule knobs via opt.
func ComputeVoltages(ctx context.Context, res *Result, stepRes float64, opt SurfaceOptions) (Voltages, error) {
	return post.ComputeVoltagesCtx(ctx, res.Assembler(), res.Mesh, res.Sigma, res.GPR, stepRes, opt)
}

// Contours extracts equipotential polylines from a raster.
func Contours(r *Raster, levels []float64) []ContourLine { return post.Contours(r, levels) }

// ContourLevels returns n equally spaced levels inside the raster range.
func ContourLevels(r *Raster, n int) []float64 { return post.EquallySpacedLevels(r, n) }

// WriteRasterCSV emits a raster as x,y,v rows.
func WriteRasterCSV(w io.Writer, r *Raster) error { return post.WriteCSV(w, r) }

// WriteRasterASCII renders a raster as a terminal heat map.
func WriteRasterASCII(w io.Writer, r *Raster) error { return post.WriteASCII(w, r) }

// WriteContoursSVG renders contour lines as an SVG document.
func WriteContoursSVG(w io.Writer, r *Raster, lines []ContourLine) error {
	return post.WriteSVG(w, r, lines)
}

// Safety re-exports (IEEE Std 80 criteria).
type (
	// SafetyCriteria holds fault duration, soil and surface-layer data.
	SafetyCriteria = safety.Criteria
	// SafetyVerdict is the outcome of a limits check.
	SafetyVerdict = safety.Verdict
	// BodyWeight selects the 50 kg or 70 kg body model.
	BodyWeight = safety.BodyWeight
)

// Body models.
const (
	Body50kg = safety.Body50kg
	Body70kg = safety.Body70kg
)

// FractionExceeding reports the fraction of sampled values above limit —
// e.g. the share of a StepVoltageMap raster that breaks the step limit.
func FractionExceeding(values []float64, limit float64) float64 {
	return safety.FractionExceeding(values, limit)
}
