// Benchmarks regenerating every table and figure of the paper's evaluation.
// Each benchmark corresponds to one table or figure (see DESIGN.md §5 for
// the experiment index and EXPERIMENTS.md for the recorded comparison):
//
//	BenchmarkBarberaSummary        — §5.1 headline numbers
//	BenchmarkTable51…              — Table 5.1 (Balaidos soil models)
//	BenchmarkFig52…                — Figure 5.2 (Barberá surface potential)
//	BenchmarkFig54…                — Figure 5.4 (Balaidos surface potential)
//	BenchmarkTable61Stages         — Table 6.1 (pipeline stage times)
//	BenchmarkTable62Schedules      — Table 6.2 (schedule × workers)
//	BenchmarkTable63…              — Table 6.3 (Balaidos parallel runs)
//	BenchmarkFig61OuterVsInner     — Figure 6.1 (loop strategy)
//	BenchmarkAblation…             — DESIGN.md §6 ablations
//
// Custom metrics: Req_ohm is the computed equivalent resistance,
// predicted_speedup the ideal-machine load-balance simulation (the
// host-independent analog of the paper's measured speed-ups; this container
// may have a single physical core).
//
// The benchmarks run at a reduced kernel-series tolerance (1e-5) so the
// whole suite stays in the minutes range; cmd/paperbench regenerates the
// tables at full fidelity.
package earthing_test

import (
	"fmt"
	"testing"

	"earthing"
	"earthing/internal/bem"
	"earthing/internal/experiments"
	"earthing/internal/fdm"
	"earthing/internal/grid"
	"earthing/internal/linalg"
	"earthing/internal/post"
	"earthing/internal/sched"
)

// benchQ is the fidelity used by the benchmark suite.
var benchQ = experiments.Quality{SeriesTol: 1e-5, Repeats: 1, GaussOrder: 4}

// BenchmarkBarberaSummary regenerates the §5.1 text numbers: the Barberá
// grid at 10 kV GPR under the uniform and two-layer soil models.
func BenchmarkBarberaSummary(b *testing.B) {
	cases := []struct {
		name  string
		model earthing.SoilModel
	}{
		{"uniform", experiments.BarberaUniform()},
		{"two-layer", experiments.BarberaTwoLayer()},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var req float64
			for i := 0; i < b.N; i++ {
				res, err := experiments.AnalyzeBarbera(c.model, benchQ, 0)
				if err != nil {
					b.Fatal(err)
				}
				req = res.Req
			}
			b.ReportMetric(req, "Req_ohm")
		})
	}
}

// BenchmarkTable51BalaidosSoilModels regenerates Table 5.1: the Balaidos
// equivalent resistance and fault current per soil model A/B/C.
func BenchmarkTable51BalaidosSoilModels(b *testing.B) {
	for _, c := range experiments.BalaidosModels() {
		b.Run(c.Name, func(b *testing.B) {
			var req float64
			for i := 0; i < b.N; i++ {
				res, err := experiments.AnalyzeBalaidos(c, benchQ, 0)
				if err != nil {
					b.Fatal(err)
				}
				req = res.Req
			}
			b.ReportMetric(req, "Req_ohm")
		})
	}
}

// BenchmarkFig52SurfacePotential regenerates the Figure 5.2 rasters: the
// Barberá earth-surface potential under both soil models. The benchmarked
// cost is the O(M·p)-per-point potential evaluation of §4.3.
func BenchmarkFig52SurfacePotential(b *testing.B) {
	for _, c := range []struct {
		name  string
		model earthing.SoilModel
	}{
		{"uniform", experiments.BarberaUniform()},
		{"two-layer", experiments.BarberaTwoLayer()},
	} {
		res, err := experiments.AnalyzeBarbera(c.model, benchQ, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				post.SurfacePotential(res.Assembler(), res.Mesh, res.Sigma, res.GPR,
					post.SurfaceOptions{NX: 24, NY: 32, Margin: 20})
			}
		})
	}
}

// BenchmarkFig54SurfacePotential regenerates the Figure 5.4 rasters: the
// Balaidos surface potential for soil models A/B/C.
func BenchmarkFig54SurfacePotential(b *testing.B) {
	for _, c := range experiments.BalaidosModels() {
		res, err := experiments.AnalyzeBalaidos(c, benchQ, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(c.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				post.SurfacePotential(res.Assembler(), res.Mesh, res.Sigma, res.GPR,
					post.SurfaceOptions{NX: 28, NY: 22, Margin: 20})
			}
		})
	}
}

// BenchmarkTable61Stages regenerates Table 6.1: the sequential Barberá
// two-layer pipeline, reporting the per-stage share of the matrix
// generation stage as a metric.
func BenchmarkTable61Stages(b *testing.B) {
	var share float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable61(benchQ)
		if err != nil {
			b.Fatal(err)
		}
		share = res.MatrixShare
	}
	b.ReportMetric(100*share, "matrixgen_%")
}

// BenchmarkTable62Schedules regenerates the distinctive rows of Table 6.2:
// the Barberá two-layer matrix generation under each schedule kind, with
// the ideal-machine predicted speed-up as a metric.
func BenchmarkTable62Schedules(b *testing.B) {
	m, err := grid.BarberaMesh()
	if err != nil {
		b.Fatal(err)
	}
	model := experiments.BarberaTwoLayer()
	for _, label := range []string{"static", "static,16", "static,1", "dynamic,64", "dynamic,1", "guided,1"} {
		s, err := sched.ParseSchedule(label)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range []int{4, 8} {
			b.Run(fmt.Sprintf("%s/P=%d", label, p), func(b *testing.B) {
				opt := benchQ
				bo := bem.Options{Workers: p, Schedule: s, SeriesTol: opt.SeriesTol}
				for i := 0; i < b.N; i++ {
					a, err := bem.New(m, model, bo)
					if err != nil {
						b.Fatal(err)
					}
					if _, _, err := a.Matrix(); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(experiments.PredictLoopSpeedup(len(m.Elements), bo), "predicted_speedup")
			})
		}
	}
}

// BenchmarkTable63BalaidosParallel regenerates Table 6.3: Balaidos matrix
// generation per soil model and worker count.
func BenchmarkTable63BalaidosParallel(b *testing.B) {
	for _, c := range experiments.BalaidosModels() {
		res, err := experiments.AnalyzeBalaidos(c, benchQ, 1)
		if err != nil {
			b.Fatal(err)
		}
		mesh := res.Mesh
		for _, p := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("%s/P=%d", c.Name, p), func(b *testing.B) {
				bo := bem.Options{Workers: p, SeriesTol: benchQ.SeriesTol}
				for i := 0; i < b.N; i++ {
					a, err := bem.New(mesh, c.Model, bo)
					if err != nil {
						b.Fatal(err)
					}
					if _, _, err := a.Matrix(); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(experiments.PredictLoopSpeedup(len(mesh.Elements), bo), "predicted_speedup")
			})
		}
	}
}

// BenchmarkFig61OuterVsInner regenerates Figure 6.1: outer- vs inner-loop
// parallelization of the Barberá two-layer matrix generation (dynamic,1).
func BenchmarkFig61OuterVsInner(b *testing.B) {
	m, err := grid.BarberaMesh()
	if err != nil {
		b.Fatal(err)
	}
	model := experiments.BarberaTwoLayer()
	for _, loop := range []bem.LoopStrategy{bem.OuterLoop, bem.InnerLoop} {
		for _, p := range []int{4, 16} {
			b.Run(fmt.Sprintf("%v/P=%d", loop, p), func(b *testing.B) {
				bo := bem.Options{
					Workers:   p,
					Loop:      loop,
					Schedule:  sched.Schedule{Kind: sched.Dynamic, Chunk: 1},
					SeriesTol: benchQ.SeriesTol,
				}
				for i := 0; i < b.N; i++ {
					a, err := bem.New(m, model, bo)
					if err != nil {
						b.Fatal(err)
					}
					if _, _, err := a.Matrix(); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(experiments.PredictLoopSpeedup(len(m.Elements), bo), "predicted_speedup")
			})
		}
	}
}

// BenchmarkAblationAssembly compares the paper's store-then-assemble
// transformation against mutex assembly (§6.2 / DESIGN.md §6).
func BenchmarkAblationAssembly(b *testing.B) {
	m, err := grid.BarberaMesh()
	if err != nil {
		b.Fatal(err)
	}
	model := experiments.BarberaTwoLayer()
	for _, mode := range []bem.AssemblyMode{bem.StoreThenAssemble, bem.MutexAssemble} {
		b.Run(mode.String(), func(b *testing.B) {
			bo := bem.Options{Workers: 4, Assembly: mode, SeriesTol: benchQ.SeriesTol}
			for i := 0; i < b.N; i++ {
				a, err := bem.New(m, model, bo)
				if err != nil {
					b.Fatal(err)
				}
				if _, _, err := a.Matrix(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSeriesTol sweeps the kernel-series tolerance (§4.3's
// accuracy/cost trade-off) on the Balaidos model C analysis.
func BenchmarkAblationSeriesTol(b *testing.B) {
	c := experiments.BalaidosModels()[2]
	for _, tol := range []float64{1e-3, 1e-5, 1e-7} {
		b.Run(fmt.Sprintf("tol=%.0e", tol), func(b *testing.B) {
			var req float64
			for i := 0; i < b.N; i++ {
				res, err := experiments.AnalyzeBalaidos(c,
					experiments.Quality{SeriesTol: tol, Repeats: 1}, 0)
				if err != nil {
					b.Fatal(err)
				}
				req = res.Req
			}
			b.ReportMetric(req, "Req_ohm")
		})
	}
}

// BenchmarkBaselineFDM runs the §3 baseline head-to-head: the same rod
// problem by BEM and by the finite-difference volume discretization.
func BenchmarkBaselineFDM(b *testing.B) {
	model := experiments.BarberaUniform()
	rod := grid.SingleRod(0, 0, 0, 3, 0.0075)
	b.Run("BEM", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m, err := grid.Discretize(rod, grid.Linear, 0.2)
			if err != nil {
				b.Fatal(err)
			}
			a, err := bem.New(m, model, bem.Options{})
			if err != nil {
				b.Fatal(err)
			}
			r, _, err := a.Matrix()
			if err != nil {
				b.Fatal(err)
			}
			if _, err := linalg.SolveCG(r, bem.RHS(m), linalg.CGOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("FD", func(b *testing.B) {
		box := fdm.Box{X0: -12, Y0: -12, X1: 12, Y1: 12, Depth: 14, H: 0.5}
		for i := 0; i < b.N; i++ {
			s, err := fdm.New(rod, model, box)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := s.Solve(1e-7, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationSolver compares the direct Cholesky solve against the
// paper-recommended diagonal preconditioned CG on the Barberá system (§4.3).
func BenchmarkAblationSolver(b *testing.B) {
	m, err := grid.BarberaMesh()
	if err != nil {
		b.Fatal(err)
	}
	a, err := bem.New(m, experiments.BarberaTwoLayer(), bem.Options{SeriesTol: benchQ.SeriesTol})
	if err != nil {
		b.Fatal(err)
	}
	r, _, err := a.Matrix()
	if err != nil {
		b.Fatal(err)
	}
	nu := bem.RHS(m)
	b.Run("cholesky", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ch, err := linalg.NewCholesky(r)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := ch.Solve(nu); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pcg", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := linalg.SolveCG(r, nu, linalg.CGOptions{Tol: 1e-10}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
