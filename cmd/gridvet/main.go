// Command gridvet runs the repo's static-analysis suite (package
// internal/analysis) over the module: it loads and type-checks every
// package with the standard library's go/* packages only, runs the analyzer
// registry, and reports findings.
//
// Output formats (-format):
//
//	text   file:line:col: [analyzer] message        (default, human)
//	json   an analysis.Report — CI artifacts and -baseline files
//	sarif  SARIF 2.1.0 for code-scanning annotation tooling
//
// With -baseline <file> (a committed -format json report) gridvet fails
// only on findings not in the baseline, so CI ratchets instead of
// big-banging; -verify-baseline checks the baseline itself (parses, names
// only known analyzers, and holds no entries for files that no longer
// exist). -tests folds in-package _test.go files into the run so the
// chaos/acceptance suites are vetted too.
//
// Deliberate violations are excused in source with a
// "//lint:ignore <analyzer> <reason>" comment on the offending line or the
// directive stack directly above it. gridvet exits 1 when unbaselined
// findings remain and 2 when the module fails to load.
//
// Usage:
//
//	go run ./cmd/gridvet ./...                 # whole module
//	go run ./cmd/gridvet -tests ./internal/... # subtree, test files included
//	go run ./cmd/gridvet -format json ./...    # machine-readable report
//	go run ./cmd/gridvet -baseline ci/gridvet-baseline.json ./...
//	go run ./cmd/gridvet -baseline ci/gridvet-baseline.json -verify-baseline
//	go run ./cmd/gridvet -list                 # print the analyzer registry
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"earthing/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// run is the testable body of main; it returns the process exit code.
func run(args []string) int {
	fs := flag.NewFlagSet("gridvet", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	list := fs.Bool("list", false, "list registered analyzers and exit")
	tests := fs.Bool("tests", false, "also load and vet in-package _test.go files")
	format := fs.String("format", "text", "output format: text, json or sarif")
	baselinePath := fs.String("baseline", "", "JSON report of accepted findings; fail only on findings not in it")
	verifyBaseline := fs.Bool("verify-baseline", false, "check the -baseline file itself (parses, files exist) and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := analysis.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		fmt.Printf("%-16s %s (pseudo, non-suppressible)\n", "ignore", "malformed or unknown //lint:ignore directives")
		fmt.Printf("%-16s %s (pseudo, non-suppressible)\n", "ignorehygiene", "//lint:ignore directives that suppress nothing")
		return 0
	}
	switch *format {
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(os.Stderr, "gridvet: unknown -format %q (want text, json or sarif)\n", *format)
		return 2
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "gridvet:", err)
		return 2
	}

	var baseline analysis.Report
	if *baselinePath != "" {
		baseline, err = analysis.ReadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gridvet:", err)
			return 2
		}
	}
	if *verifyBaseline {
		if *baselinePath == "" {
			fmt.Fprintln(os.Stderr, "gridvet: -verify-baseline requires -baseline")
			return 2
		}
		if err := analysis.VerifyBaseline(root, baseline, analyzers); err != nil {
			fmt.Fprintln(os.Stderr, "gridvet:", err)
			return 1
		}
		fmt.Printf("gridvet: baseline %s ok (%d finding(s))\n", *baselinePath, baseline.Count)
		return 0
	}

	pkgs, err := analysis.LoadModuleOpts(root, analysis.LoadOptions{Tests: *tests})
	if err != nil {
		fmt.Fprintln(os.Stderr, "gridvet:", err)
		return 2
	}
	pkgs = filterPackages(pkgs, fs.Args(), root)

	findings := analysis.Run(pkgs, analyzers)
	report := analysis.NewReport(root, findings)
	fresh := report.Findings
	if *baselinePath != "" {
		fresh = report.ApplyBaseline(baseline)
	}

	switch *format {
	case "json":
		if err := report.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "gridvet:", err)
			return 2
		}
	case "sarif":
		if err := report.WriteSARIF(os.Stdout, analyzers); err != nil {
			fmt.Fprintln(os.Stderr, "gridvet:", err)
			return 2
		}
	default:
		printText(fresh)
	}
	if len(fresh) > 0 {
		if n := len(report.Findings) - len(fresh); n > 0 {
			fmt.Fprintf(os.Stderr, "gridvet: %d new finding(s), %d baselined\n", len(fresh), n)
		} else {
			fmt.Fprintf(os.Stderr, "gridvet: %d finding(s)\n", len(fresh))
		}
		return 1
	}
	if n := len(report.Findings); n > 0 {
		fmt.Fprintf(os.Stderr, "gridvet: all %d finding(s) baselined\n", n)
	}
	return 0
}

// printText renders findings in the canonical text form with the report's
// module-relative paths.
func printText(findings []analysis.ReportFinding) {
	for _, f := range findings {
		fmt.Printf("%s:%d:%d: [%s] %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
	}
}

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above the working directory")
		}
		dir = parent
	}
}

// filterPackages narrows pkgs to the ./...-style patterns given on the
// command line (resolved against root). No patterns, or any "./..."/"all"
// pattern, keeps everything.
func filterPackages(pkgs []*analysis.Package, patterns []string, root string) []*analysis.Package {
	if len(patterns) == 0 {
		return pkgs
	}
	var keep []func(dir string) bool
	for _, pat := range patterns {
		if pat == "./..." || pat == "all" || pat == "..." {
			return pkgs
		}
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
		}
		abs := filepath.Clean(filepath.Join(root, filepath.FromSlash(strings.TrimPrefix(pat, "./"))))
		keep = append(keep, func(dir string) bool {
			if dir == abs {
				return true
			}
			return recursive && strings.HasPrefix(dir, abs+string(filepath.Separator))
		})
	}
	var out []*analysis.Package
	for _, p := range pkgs {
		for _, ok := range keep {
			if ok(p.Dir) {
				out = append(out, p)
				break
			}
		}
	}
	return out
}
