// Command gridvet runs the repo's static-analysis suite (package
// internal/analysis) over the module: it loads and type-checks every
// package with the standard library's go/* packages only, runs the analyzer
// registry, and prints findings as
//
//	file:line:col: [analyzer] message
//
// Deliberate violations are excused in source with a
// "//lint:ignore <analyzer> <reason>" comment on the offending line or the
// line directly above it. gridvet exits 1 when unsuppressed findings
// remain and 2 when the module fails to load.
//
// Usage:
//
//	go run ./cmd/gridvet ./...          # whole module
//	go run ./cmd/gridvet ./internal/... # subtree only
//	go run ./cmd/gridvet -list          # print the analyzer registry
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"earthing/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list registered analyzers and exit")
	flag.Parse()

	analyzers := analysis.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "gridvet:", err)
		os.Exit(2)
	}
	pkgs, err := analysis.LoadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gridvet:", err)
		os.Exit(2)
	}
	pkgs = filterPackages(pkgs, flag.Args(), root)

	findings := analysis.Run(pkgs, analyzers)
	cwd, err := os.Getwd()
	if err != nil {
		cwd = "" // fall back to absolute paths in the report
	}
	for _, f := range findings {
		name := f.Pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
		}
		fmt.Printf("%s:%d:%d: [%s] %s\n", name, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "gridvet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above the working directory")
		}
		dir = parent
	}
}

// filterPackages narrows pkgs to the ./...-style patterns given on the
// command line (resolved against root). No patterns, or any "./..."/"all"
// pattern, keeps everything.
func filterPackages(pkgs []*analysis.Package, patterns []string, root string) []*analysis.Package {
	if len(patterns) == 0 {
		return pkgs
	}
	var keep []func(dir string) bool
	for _, pat := range patterns {
		if pat == "./..." || pat == "all" || pat == "..." {
			return pkgs
		}
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
		}
		abs := filepath.Clean(filepath.Join(root, filepath.FromSlash(strings.TrimPrefix(pat, "./"))))
		keep = append(keep, func(dir string) bool {
			if dir == abs {
				return true
			}
			return recursive && strings.HasPrefix(dir, abs+string(filepath.Separator))
		})
	}
	var out []*analysis.Package
	for _, p := range pkgs {
		for _, ok := range keep {
			if ok(p.Dir) {
				out = append(out, p)
				break
			}
		}
	}
	return out
}
