// Command gridgen emits grounding-grid geometries in the text format of
// package grid, and optionally draws the plan (Figures 5.1 / 5.3 of the
// paper) as SVG.
//
// Examples:
//
//	gridgen -grid barbera > barbera.txt
//	gridgen -grid balaidos -svg balaidos.svg
//	gridgen -grid rect -nx 8 -ny 6 -width 80 -height 60 -depth 0.8
//	gridgen -preset interconnected -n 10000 -seed 1 > big.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"earthing"
	"earthing/internal/experiments"
	"earthing/internal/fsio"
	"earthing/internal/grid"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gridgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("gridgen", flag.ContinueOnError)
	var (
		kind   = fs.String("grid", "rect", "grid: barbera | balaidos | rect | triangle")
		preset = fs.String("preset", "", "procedural preset: interconnected (overrides -grid)")
		n      = fs.Int("n", 10_000, "target DoF for -preset interconnected")
		seed   = fs.Int64("seed", 1, "seed for -preset interconnected")
		nx     = fs.Int("nx", 6, "lattice lines along x (rect/triangle)")
		ny     = fs.Int("ny", 6, "lattice lines along y (rect/triangle)")
		width  = fs.Float64("width", 60, "plan width in m (rect; triangle leg x)")
		height = fs.Float64("height", 60, "plan height in m (rect; triangle leg y)")
		depth  = fs.Float64("depth", 0.8, "burial depth in m")
		radius = fs.Float64("radius", 0.006, "conductor radius in m")
		svg    = fs.String("svg", "", "also draw the plan as SVG to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}

	var g *grid.Grid
	var err error
	if *preset != "" {
		g, err = buildPreset(*preset, *n, *seed)
	} else {
		g, err = build(*kind, *nx, *ny, *width, *height, *depth, *radius)
	}
	if err != nil {
		return err
	}
	if err := earthing.WriteGrid(stdout, g); err != nil {
		return err
	}
	if *svg != "" {
		err := fsio.WriteFile(*svg, func(f io.Writer) error {
			return experiments.PlanSVG(f, g)
		})
		if err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "plan drawn to", *svg)
	}
	return nil
}

func build(kind string, nx, ny int, width, height, depth, radius float64) (*grid.Grid, error) {
	switch kind {
	case "barbera":
		return grid.Barbera(), nil
	case "balaidos":
		return grid.Balaidos(), nil
	case "rect":
		return grid.RectMesh(0, 0, width, height, nx, ny, depth, radius), nil
	case "triangle":
		return grid.TriangleMesh(width, height, nx, ny, depth, radius), nil
	default:
		return nil, fmt.Errorf("unknown grid kind %q", kind)
	}
}

func buildPreset(preset string, n int, seed int64) (*grid.Grid, error) {
	switch preset {
	case "interconnected":
		if n < 1 {
			return nil, fmt.Errorf("-n must be positive, got %d", n)
		}
		return grid.Interconnected(n, seed), nil
	default:
		return nil, fmt.Errorf("unknown preset %q", preset)
	}
}
