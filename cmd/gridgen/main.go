// Command gridgen emits grounding-grid geometries in the text format of
// package grid, and optionally draws the plan (Figures 5.1 / 5.3 of the
// paper) as SVG.
//
// Examples:
//
//	gridgen -grid barbera > barbera.txt
//	gridgen -grid balaidos -svg balaidos.svg
//	gridgen -grid rect -nx 8 -ny 6 -width 80 -height 60 -depth 0.8
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"earthing"
	"earthing/internal/experiments"
	"earthing/internal/fsio"
	"earthing/internal/grid"
)

func main() {
	var (
		kind   = flag.String("grid", "rect", "grid: barbera | balaidos | rect | triangle")
		nx     = flag.Int("nx", 6, "lattice lines along x (rect/triangle)")
		ny     = flag.Int("ny", 6, "lattice lines along y (rect/triangle)")
		width  = flag.Float64("width", 60, "plan width in m (rect; triangle leg x)")
		height = flag.Float64("height", 60, "plan height in m (rect; triangle leg y)")
		depth  = flag.Float64("depth", 0.8, "burial depth in m")
		radius = flag.Float64("radius", 0.006, "conductor radius in m")
		svg    = flag.String("svg", "", "also draw the plan as SVG to this file")
	)
	flag.Parse()

	g, err := build(*kind, *nx, *ny, *width, *height, *depth, *radius)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gridgen:", err)
		os.Exit(1)
	}
	if err := earthing.WriteGrid(os.Stdout, g); err != nil {
		fmt.Fprintln(os.Stderr, "gridgen:", err)
		os.Exit(1)
	}
	if *svg != "" {
		err := fsio.WriteFile(*svg, func(f io.Writer) error {
			return experiments.PlanSVG(f, g)
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "gridgen:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "plan drawn to", *svg)
	}
}

func build(kind string, nx, ny int, width, height, depth, radius float64) (*grid.Grid, error) {
	switch kind {
	case "barbera":
		return grid.Barbera(), nil
	case "balaidos":
		return grid.Balaidos(), nil
	case "rect":
		return grid.RectMesh(0, 0, width, height, nx, ny, depth, radius), nil
	case "triangle":
		return grid.TriangleMesh(width, height, nx, ny, depth, radius), nil
	default:
		return nil, fmt.Errorf("unknown grid kind %q", kind)
	}
}
