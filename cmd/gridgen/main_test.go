package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"earthing/internal/grid"
)

var update = flag.Bool("update", false, "rewrite the golden transcripts")

func goldenPath(name string) string {
	return filepath.Join("..", "..", "artifacts", "golden", name+".golden")
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := goldenPath(name)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run go test -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("transcript differs from %s (%d vs %d bytes); if the generator change is deliberate, run go test -update and re-run the benches",
			path, len(got), len(want))
	}
}

// TestGoldenInterconnected pins the procedural preset end to end through the
// CLI: the emitted geometry text for a fixed (n, seed) is the contract that
// lets benches and tests share large grids without shipping geometry files.
func TestGoldenInterconnected(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-preset", "interconnected", "-n", "300", "-seed", "7"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	// The transcript must round-trip through the grid reader.
	if _, err := grid.Read(strings.NewReader(out)); err != nil {
		t.Fatalf("emitted grid does not parse: %v", err)
	}
	checkGolden(t, "gridgen-interconnected-n300-s7", out)
}

// TestRunRejectsBadFlags: malformed invocations surface as errors, not
// partial output.
func TestRunRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-grid", "nonesuch"},
		{"-preset", "nonesuch"},
		{"-preset", "interconnected", "-n", "0"},
		{"-preset", "interconnected", "-n", "-5"},
		{"stray-arg"},
	}
	for _, args := range cases {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Errorf("run(%q) succeeded, want error", args)
		}
	}
}

// TestBuiltinGridsStillEmit guards the pre-preset paths of the CLI refactor.
func TestBuiltinGridsStillEmit(t *testing.T) {
	for _, kind := range []string{"barbera", "balaidos", "rect", "triangle"} {
		var buf bytes.Buffer
		if err := run([]string{"-grid", kind}, &buf); err != nil {
			t.Fatalf("-grid %s: %v", kind, err)
		}
		if _, err := grid.Read(&buf); err != nil {
			t.Fatalf("-grid %s output does not parse: %v", kind, err)
		}
	}
}
