// Command paperbench regenerates every table and figure of the paper's
// evaluation on the reproduced system and prints them side by side with the
// published values. See EXPERIMENTS.md for the recorded comparison.
//
// Examples:
//
//	paperbench                  # everything, full fidelity (minutes)
//	paperbench -quick           # everything, reduced series tolerance
//	paperbench -exp table5.1    # a single experiment
//	paperbench -exp fig5.2 -out figures/   # also write CSV + SVG artifacts
//
// Experiments: barbera, table5.1, table6.1, table6.2, table6.3, fig5.1,
// fig5.2, fig5.3, fig5.4, fig6.1, fieldeval, sweep, assembly, hmatrix,
// optimize, ablation-assembly, ablation-tol, ablation-solver,
// ablation-elements, ablation-threelayer, ablation-grading, baseline-fdm,
// all.
//
// The fieldeval experiment benchmarks the batched field-evaluation engine on
// the Figure 5.4 raster; with -json it records the result as
// BENCH_field_eval.json (or the given path). The sweep experiment benchmarks
// the multi-scenario batch engine (3 Balaidos soils × 3 GPR values) against
// a sequential Analyze loop; with -json it records BENCH_sweep.json. The
// assembly experiment benchmarks the flat kernel and blocked/mixed Cholesky
// against the reference hot path on Balaidos soil B; with -json it records
// BENCH_assembly.json. The hmatrix experiment sweeps the compressed solver
// over a 1k–20k DoF ladder of interconnected grids against the extrapolated
// dense cost; with -json it records BENCH_hmatrix.json. The optimize
// experiment benchmarks the grid-synthesis design loop on a Balaidos-class
// site against naive per-candidate solves; with -json it records
// BENCH_optimize.json.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"earthing/internal/experiments"
	"earthing/internal/fsio"
	"earthing/internal/grid"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		os.Exit(1)
	}
}

// run parses args and executes the selected experiments, writing tables to
// stdout. Factored out of main so the end-to-end tests can drive the CLI
// in-process against golden transcripts.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("paperbench", flag.ContinueOnError)
	var (
		exp     = fs.String("exp", "all", "experiment id (see doc comment)")
		quick   = fs.Bool("quick", false, "reduced fidelity (series tol 1e-4)")
		out     = fs.String("out", "", "directory for figure artifacts (CSV/SVG)")
		procs   = fs.String("procs", "1,2,4,8", "worker counts for the parallel tables")
		repeats = fs.Int("repeats", 1, "timing repetitions (paper used min of 4)")
		jsonOut = fs.String("json", "", "benchmark JSON path for -exp fieldeval, sweep, assembly, hmatrix or optimize (e.g. BENCH_optimize.json)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %q", fs.Args())
	}

	q := experiments.Default()
	if *quick {
		q = experiments.Quick()
	}
	if *repeats < 1 {
		return fmt.Errorf("-repeats %d must be at least 1", *repeats)
	}
	q.Repeats = *repeats

	workers, err := parseProcs(*procs)
	if err != nil {
		return err
	}
	return runExperiments(stdout, *exp, q, workers, *out, *jsonOut)
}

func parseProcs(s string) ([]int, error) {
	var out []int
	for _, p := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad -procs entry %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func runExperiments(w io.Writer, exp string, q experiments.Quality, workers []int, out, jsonOut string) error {
	all := exp == "all"
	ran := false
	do := func(id string, f func() error) error {
		if !all && exp != id {
			return nil
		}
		ran = true
		return f()
	}

	steps := []struct {
		id string
		f  func() error
	}{
		{"fig5.1", func() error { return planFigure(w, out, "fig5.1-barbera.svg", grid.Barbera()) }},
		{"fig5.3", func() error { return planFigure(w, out, "fig5.3-balaidos.svg", grid.Balaidos()) }},
		{"barbera", func() error { return experiments.BarberaSummary(w, q, 0) }},
		{"table5.1", func() error { return experiments.Table51(w, q, 0) }},
		{"fig5.2", func() error { return experiments.Fig52(w, q, 0, out, 0, 0) }},
		{"fig5.4", func() error { return experiments.Fig54(w, q, 0, out, 0, 0) }},
		{"table6.1", func() error { return experiments.Table61(w, q) }},
		{"fig6.1", func() error { return experiments.Fig61(w, q, workers) }},
		{"fieldeval", func() error { return experiments.FieldEval(w, q, 0, 0, 0, jsonOut) }},
		{"sweep", func() error { return experiments.SweepEngine(context.Background(), w, q, 0, jsonOut) }},
		{"assembly", func() error { return experiments.AssemblyKernels(w, q, 0, jsonOut) }},
		{"hmatrix", func() error { return experiments.HMatrixScaling(w, q, 0, jsonOut) }},
		{"optimize", func() error { return experiments.OptimizeLoop(context.Background(), w, q, 0, jsonOut) }},
		{"table6.2", func() error { return experiments.Table62(w, q, workers) }},
		{"table6.3", func() error { return experiments.Table63(w, q, workers) }},
		{"ablation-assembly", func() error { return experiments.AblationAssembly(w, q, workers) }},
		{"ablation-tol", func() error { return experiments.AblationSeriesTol(w, 0) }},
		{"ablation-solver", func() error { return experiments.AblationSolver(w, q) }},
		{"ablation-elements", func() error { return experiments.AblationElements(w) }},
		{"ablation-threelayer", func() error { return experiments.AblationThreeLayer(w) }},
		{"baseline-fdm", func() error { return experiments.BaselineFDM(w) }},
		{"ablation-grading", func() error { return experiments.AblationGrading(w, q) }},
	}
	for _, s := range steps {
		if err := do(s.id, s.f); err != nil {
			return fmt.Errorf("%s: %w", s.id, err)
		}
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}

// planFigure draws a grid plan SVG (Figures 5.1 and 5.3). Without -out it
// just summarises the plan on stdout.
func planFigure(w io.Writer, dir, name string, g *grid.Grid) error {
	//lint:ignore errdrop transcript status line; a failed console write has no recovery path
	fmt.Fprintf(w, "\n== %s: %d conductors (%d rods), bounds %.0f x %.0f m ==\n",
		name, len(g.Conductors), g.NumRods(), g.Bounds().Size().X, g.Bounds().Size().Y)
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return fsio.WriteFile(filepath.Join(dir, name), func(f io.Writer) error {
		return experiments.PlanSVG(f, g)
	})
}
