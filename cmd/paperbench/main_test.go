package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden transcripts")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("..", "..", "artifacts", "golden", name+".golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run go test -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("transcript differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestGoldenBarbera pins the §5.1 comparison table: our Req/current next to
// the published values. The -quick fidelity and a single worker keep the run
// fast and bit-reproducible; the numbers themselves are what the paper
// reproduction is graded on.
func TestGoldenBarbera(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "barbera", "-quick", "-procs", "1"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	checkGolden(t, "paperbench-barbera-quick", buf.String())
}

// TestGoldenPlanFigures pins the grid-plan summaries (conductor counts and
// bounds of the two substations).
func TestGoldenPlanFigures(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "fig5.1"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := run([]string{"-exp", "fig5.3"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	checkGolden(t, "paperbench-plan-figures", buf.String())
}

// TestSweepBenchSmoke drives the -exp sweep benchmark end to end at quick
// fidelity and checks the recorded JSON: the batch side must assemble one
// system per soil model (3 of 9 scenarios), match the sequential loop bit
// for bit, and come out ahead on wall time.
func TestSweepBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the 9-scenario Balaidos workload twice")
	}
	jsonPath := filepath.Join(t.TempDir(), "BENCH_sweep.json")
	var buf bytes.Buffer
	if err := run([]string{"-exp", "sweep", "-quick", "-json", jsonPath}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var sb struct {
		Scenarios            int     `json:"scenarios"`
		SequentialAssemblies int     `json:"sequential_assemblies"`
		SweepAssemblies      int     `json:"sweep_assemblies"`
		Speedup              float64 `json:"speedup"`
		BitIdentical         bool    `json:"bit_identical"`
	}
	if err := json.Unmarshal(data, &sb); err != nil {
		t.Fatal(err)
	}
	if sb.Scenarios != 9 || sb.SequentialAssemblies != 9 || sb.SweepAssemblies != 3 {
		t.Errorf("assembly accounting off: %+v", sb)
	}
	if !sb.BitIdentical {
		t.Error("sweep results not bit-identical to sequential Analyze")
	}
	if sb.Speedup <= 1 {
		t.Errorf("sweep slower than sequential loop: speedup %.2f", sb.Speedup)
	}
}

// TestAssemblyBenchSmoke drives the -exp assembly benchmark end to end at
// quick fidelity and checks the recorded JSON: both Balaidos soil cases must
// be present, the blocked factorization must reproduce the reference
// solution bit for bit, the flat/mixed paths must hold the 1e-10 relative
// Req contract, and the headline (soil C) combined path must come out ahead.
func TestAssemblyBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs four full Balaidos assemblies")
	}
	jsonPath := filepath.Join(t.TempDir(), "BENCH_assembly.json")
	var buf bytes.Buffer
	if err := run([]string{"-exp", "assembly", "-quick", "-json", jsonPath}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var ab struct {
		CombinedSpeedup float64 `json:"combined_speedup"`
		Cases           []struct {
			Soil                string  `json:"soil"`
			DoF                 int     `json:"dof"`
			BlockedBitIdentical bool    `json:"blocked_bit_identical"`
			ReqReference        float64 `json:"req_reference_ohm"`
			MaxAbsDiffReqFlat   float64 `json:"max_abs_diff_req_flat_ohm"`
			MaxAbsDiffReqMixed  float64 `json:"max_abs_diff_req_mixed_ohm"`
		} `json:"cases"`
	}
	if err := json.Unmarshal(data, &ab); err != nil {
		t.Fatal(err)
	}
	if len(ab.Cases) != 2 || ab.Cases[0].Soil != "C" || ab.Cases[1].Soil != "B" {
		t.Fatalf("unexpected case set: %+v", ab.Cases)
	}
	for _, c := range ab.Cases {
		if c.DoF == 0 {
			t.Errorf("soil %s: empty discretization", c.Soil)
		}
		if !c.BlockedBitIdentical {
			t.Errorf("soil %s: blocked factorization not bit-identical", c.Soil)
		}
		if tol := 1e-10 * c.ReqReference; c.MaxAbsDiffReqFlat > tol || c.MaxAbsDiffReqMixed > tol {
			t.Errorf("soil %s: |ΔReq| flat %g / mixed %g exceeds 1e-10 relative (%g)",
				c.Soil, c.MaxAbsDiffReqFlat, c.MaxAbsDiffReqMixed, tol)
		}
	}
	if ab.CombinedSpeedup <= 1.2 {
		t.Errorf("flat+blocked path not ahead of reference: speedup %.2f", ab.CombinedSpeedup)
	}
}

// TestHMatrixBenchSmoke drives the compressed-solver scaling bench through
// the CLI on the quick smoke ladder and checks the record's structural and
// accuracy contracts (the full-ladder time/memory acceptance bars only hold
// at scale and are asserted by the committed BENCH_hmatrix.json run).
func TestHMatrixBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds two compressed systems plus their dense references")
	}
	jsonPath := filepath.Join(t.TempDir(), "BENCH_hmatrix.json")
	var buf bytes.Buffer
	if err := run([]string{"-exp", "hmatrix", "-quick", "-json", jsonPath}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var hb struct {
		Eps          float64 `json:"eps"`
		MaxReqRelErr float64 `json:"max_req_rel_err"`
		Rungs        []struct {
			DoF           int     `json:"dof"`
			CGIterations  int     `json:"cg_iterations"`
			LowRankBlocks int     `json:"low_rank_blocks"`
			DenseMeasured bool    `json:"dense_measured"`
			ReqHMatrix    float64 `json:"req_hmatrix_ohm"`
			ReqRelErr     float64 `json:"req_rel_err"`
		} `json:"rungs"`
	}
	if err := json.Unmarshal(data, &hb); err != nil {
		t.Fatal(err)
	}
	if len(hb.Rungs) != 2 {
		t.Fatalf("quick ladder has %d rungs, want 2", len(hb.Rungs))
	}
	for _, r := range hb.Rungs {
		if r.DoF == 0 || r.CGIterations == 0 || r.ReqHMatrix <= 0 {
			t.Errorf("rung %+v: incomplete compressed solve record", r)
		}
		if r.LowRankBlocks == 0 {
			t.Errorf("rung n=%d: no admissible blocks; partition degenerate", r.DoF)
		}
		if !r.DenseMeasured {
			t.Errorf("rung n=%d: quick ladder must measure the dense reference", r.DoF)
		}
	}
	if bar := 10 * hb.Eps; hb.MaxReqRelErr > bar {
		t.Errorf("max |ΔReq|/Req %.3g exceeds 10·ε = %.0e", hb.MaxReqRelErr, bar)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-exp", "nonesuch"},
		{"-procs", "0"},
		{"-procs", "1,x"},
		{"-repeats", "0"},
		{"stray"},
	}
	for _, args := range cases {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Errorf("run(%q) succeeded, want error", args)
		}
	}
}

// TestOptimizeBenchSmoke drives the design-loop benchmark through the CLI at
// quick fidelity and checks the recorded JSON: the search must issue at
// least 200 candidate requests on the Balaidos-class site, amortize a
// meaningful share of them through the evaluation cache, reproduce the
// winner across worker counts, and come out ahead of naive per-candidate
// solves (the committed BENCH_optimize.json pins the ≥2× acceptance bar;
// the smoke bar is >1 to tolerate loaded CI machines).
func TestOptimizeBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the 400-eval synthesis search twice plus the naive leg")
	}
	jsonPath := filepath.Join(t.TempDir(), "BENCH_optimize.json")
	var buf bytes.Buffer
	if err := run([]string{"-exp", "optimize", "-quick", "-json", jsonPath}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var ob struct {
		Requested     int     `json:"requested"`
		Evaluated     int     `json:"evaluated"`
		CacheHits     int     `json:"cache_hits"`
		HitRate       float64 `json:"hit_rate"`
		Feasible      bool    `json:"feasible"`
		Speedup       float64 `json:"speedup"`
		Deterministic bool    `json:"deterministic"`
	}
	if err := json.Unmarshal(data, &ob); err != nil {
		t.Fatal(err)
	}
	if ob.Requested < 200 {
		t.Errorf("only %d candidates requested, want ≥ 200", ob.Requested)
	}
	if ob.Requested != ob.Evaluated+ob.CacheHits {
		t.Errorf("candidate accounting off: %+v", ob)
	}
	if ob.HitRate <= 0 {
		t.Error("no cache amortization measured")
	}
	if !ob.Feasible {
		t.Error("search found no feasible design on the benchmark site")
	}
	if !ob.Deterministic {
		t.Error("winner not reproduced across worker counts")
	}
	if ob.Speedup <= 1 {
		t.Errorf("design loop slower than naive solves: speedup %.2f", ob.Speedup)
	}
}
