package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden transcripts")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("..", "..", "artifacts", "golden", name+".golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run go test -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("transcript differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestGoldenBarbera pins the §5.1 comparison table: our Req/current next to
// the published values. The -quick fidelity and a single worker keep the run
// fast and bit-reproducible; the numbers themselves are what the paper
// reproduction is graded on.
func TestGoldenBarbera(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "barbera", "-quick", "-procs", "1"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	checkGolden(t, "paperbench-barbera-quick", buf.String())
}

// TestGoldenPlanFigures pins the grid-plan summaries (conductor counts and
// bounds of the two substations).
func TestGoldenPlanFigures(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "fig5.1"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := run([]string{"-exp", "fig5.3"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	checkGolden(t, "paperbench-plan-figures", buf.String())
}

func TestRunRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-exp", "nonesuch"},
		{"-procs", "0"},
		{"-procs", "1,x"},
		{"-repeats", "0"},
		{"stray"},
	}
	for _, args := range cases {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Errorf("run(%q) succeeded, want error", args)
		}
	}
}
