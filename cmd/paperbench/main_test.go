package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden transcripts")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("..", "..", "artifacts", "golden", name+".golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run go test -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("transcript differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestGoldenBarbera pins the §5.1 comparison table: our Req/current next to
// the published values. The -quick fidelity and a single worker keep the run
// fast and bit-reproducible; the numbers themselves are what the paper
// reproduction is graded on.
func TestGoldenBarbera(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "barbera", "-quick", "-procs", "1"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	checkGolden(t, "paperbench-barbera-quick", buf.String())
}

// TestGoldenPlanFigures pins the grid-plan summaries (conductor counts and
// bounds of the two substations).
func TestGoldenPlanFigures(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "fig5.1"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := run([]string{"-exp", "fig5.3"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	checkGolden(t, "paperbench-plan-figures", buf.String())
}

// TestSweepBenchSmoke drives the -exp sweep benchmark end to end at quick
// fidelity and checks the recorded JSON: the batch side must assemble one
// system per soil model (3 of 9 scenarios), match the sequential loop bit
// for bit, and come out ahead on wall time.
func TestSweepBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the 9-scenario Balaidos workload twice")
	}
	jsonPath := filepath.Join(t.TempDir(), "BENCH_sweep.json")
	var buf bytes.Buffer
	if err := run([]string{"-exp", "sweep", "-quick", "-json", jsonPath}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var sb struct {
		Scenarios            int     `json:"scenarios"`
		SequentialAssemblies int     `json:"sequential_assemblies"`
		SweepAssemblies      int     `json:"sweep_assemblies"`
		Speedup              float64 `json:"speedup"`
		BitIdentical         bool    `json:"bit_identical"`
	}
	if err := json.Unmarshal(data, &sb); err != nil {
		t.Fatal(err)
	}
	if sb.Scenarios != 9 || sb.SequentialAssemblies != 9 || sb.SweepAssemblies != 3 {
		t.Errorf("assembly accounting off: %+v", sb)
	}
	if !sb.BitIdentical {
		t.Error("sweep results not bit-identical to sequential Analyze")
	}
	if sb.Speedup <= 1 {
		t.Errorf("sweep slower than sequential loop: speedup %.2f", sb.Speedup)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-exp", "nonesuch"},
		{"-procs", "0"},
		{"-procs", "1,x"},
		{"-repeats", "0"},
		{"stray"},
	}
	for _, args := range cases {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Errorf("run(%q) succeeded, want error", args)
		}
	}
}
