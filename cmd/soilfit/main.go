// Command soilfit fits soil models to Wenner resistivity survey data — the
// field measurements from which the paper's soil parameters are
// "experimentally obtained" (§2). It reads spacing/apparent-resistivity
// pairs, fits both a uniform and a two-layer model, reports which one the
// data supports, and prints the fitted parameters in the conductivity units
// the solver uses.
//
// Input format (stdin or -data FILE): one "spacing rhoA" pair per line,
// '#' comments allowed:
//
//	# a(m)  rhoA(ohm·m)
//	0.5   187.3
//	1.0   160.2
//	...
//
// Example:
//
//	soilfit -data survey.txt
//	soilfit -demo       # synthesize a survey over a known soil and fit it
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"earthing/internal/soil"
	"earthing/internal/wenner"
)

func main() {
	var (
		dataFile = flag.String("data", "", "survey file (default stdin)")
		demo     = flag.Bool("demo", false, "synthesize a demo survey instead of reading data")
		noise    = flag.Float64("noise", 0.03, "relative noise of the demo survey")
		seed     = flag.Int64("seed", 1, "demo noise seed")
	)
	flag.Parse()

	var data []wenner.Measurement
	var err error
	if *demo {
		truth := soil.NewTwoLayer(1.0/200, 1.0/50, 2.0)
		fmt.Printf("demo survey over: %s\n", truth.Describe())
		r := rand.New(rand.NewSource(*seed))
		data = wenner.Sound(truth, wenner.LogSpacings(0.25, 60, 14), *noise, r.NormFloat64)
	} else {
		data, err = readSurvey(*dataFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "soilfit:", err)
			os.Exit(1)
		}
	}

	fmt.Printf("%d measurements, spacings %.3g–%.3g m\n",
		len(data), data[0].Spacing, data[len(data)-1].Spacing)

	rhoU, rmsU, err := wenner.FitUniform(data)
	if err != nil {
		fmt.Fprintln(os.Stderr, "soilfit:", err)
		os.Exit(1)
	}
	fmt.Printf("\nuniform fit:   ρ = %.1f Ω·m (γ = %.6g (Ω·m)⁻¹), RMS log misfit %.4f\n",
		rhoU, 1/rhoU, rmsU)

	fit, err := wenner.InvertTwoLayer(data, wenner.InvertOptions{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "soilfit:", err)
		os.Exit(1)
	}
	fmt.Printf("two-layer fit: %s\n", fit)
	fmt.Printf("               γ1 = %.6g, γ2 = %.6g (Ω·m)⁻¹, h = %.2f m\n",
		1/fit.Rho1, 1/fit.Rho2, fit.H)

	// Model-selection guidance, per the paper's warning that uniform models
	// lose accuracy when resistivity changes with depth.
	switch {
	case rmsU < 0.05:
		fmt.Println("\nverdict: the soil is effectively uniform; a single-layer model suffices.")
	case fit.RMSLog < rmsU/3:
		fmt.Println("\nverdict: clear stratification — use the two-layer model for the grounding analysis")
		fmt.Println("(the paper: uniform models 'can significantly vary' the design parameters).")
	default:
		fmt.Println("\nverdict: neither model fits well; consider more measurements or a 3-layer model.")
	}

	// Residual table.
	fmt.Printf("\n%10s %12s %12s %12s\n", "a (m)", "measured", "uniform", "two-layer")
	for _, d := range data {
		model2 := wenner.ApparentResistivityTwoLayerSeries(fit.Rho1, fit.Rho2, fit.H, d.Spacing, 64)
		fmt.Printf("%10.3f %12.2f %12.2f %12.2f\n", d.Spacing, d.RhoA, rhoU, model2)
	}
}

func readSurvey(path string) ([]wenner.Measurement, error) {
	var r io.Reader = os.Stdin
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		//lint:ignore errdrop read-only descriptor; Close cannot lose data already read
		defer f.Close()
		r = f
	}
	var data []wenner.Measurement
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = text[:i]
		}
		fields := strings.Fields(text)
		if len(fields) == 0 {
			continue
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("line %d: want 'spacing rhoA', got %q", line, text)
		}
		a, err1 := strconv.ParseFloat(fields[0], 64)
		rho, err2 := strconv.ParseFloat(fields[1], 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("line %d: bad numbers in %q", line, text)
		}
		data = append(data, wenner.Measurement{Spacing: a, RhoA: rho})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return data, wenner.Validate(data)
}
