// Command designer synthesizes a grounding grid automatically: it drives the
// design-loop engine, searching lattice density per direction, perimeter rod
// count and burial depth to minimize copper cost subject to the IEEE Std 80
// touch/step/mesh limits. Candidate populations are evaluated as one sweep
// batch per generation on the shared worker pool, and the search is
// bit-reproducible at any -workers setting for a fixed -seed.
//
// Examples:
//
//	designer -width 70 -height 70 -soil two-layer -gamma1 0.0067 -gamma2 0.025 -h1 1.5 \
//	         -fault 2500 -fault-t 0.5 -rock-rho 2500 > design.txt
//	designer -width 40 -height 30 -soil uniform -gamma1 0.02 -fault 800 -json
//	designer -width 60 -height 60 -soil uniform -gamma1 0.02 -fault 1000 -html design.html
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"earthing"
	"earthing/internal/fsio"
	"earthing/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "designer:", err)
		os.Exit(1)
	}
}

// run parses args and executes the synthesis, writing the whole transcript
// (progress, summary, winning geometry) to stdout. Factored out of main so
// the end-to-end tests can drive the CLI in-process against golden
// transcripts.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("designer", flag.ContinueOnError)
	var (
		width     = fs.Float64("width", 60, "plan width, m")
		height    = fs.Float64("height", 60, "plan height, m")
		radius    = fs.Float64("radius", 0.006, "conductor radius, m")
		minLines  = fs.Int("min-lines", 0, "minimum lattice lines per direction (0 = engine default)")
		maxLines  = fs.Int("max-lines", 0, "maximum lattice lines per direction (0 = engine default)")
		maxRods   = fs.Int("max-rods", 0, "maximum perimeter rods (0 = engine default)")
		rodLen    = fs.Float64("rod-len", 0, "rod length, m (0 = engine default)")
		rodRadius = fs.Float64("rod-radius", 0, "rod radius, m (0 = engine default)")
		minDepth  = fs.Float64("min-depth", 0, "minimum burial depth, m (0 = engine default)")
		maxDepth  = fs.Float64("max-depth", 0, "maximum burial depth, m (0 = engine default)")
		depthStep = fs.Float64("depth-step", 0, "burial depth quantization, m (0 = engine default)")
		condCost  = fs.Float64("cost-conductor", 0, "cost per metre of lattice conductor (0 = engine default)")
		rodCost   = fs.Float64("cost-rod", 0, "cost per metre of rod (0 = engine default)")
		soilKind  = fs.String("soil", "uniform", "soil model: uniform | two-layer")
		gamma1    = fs.Float64("gamma1", 0.02, "layer 1 conductivity (ohm·m)^-1")
		gamma2    = fs.Float64("gamma2", 0.02, "layer 2 conductivity (two-layer)")
		h1        = fs.Float64("h1", 1.0, "layer 1 thickness, m (two-layer)")
		fault     = fs.Float64("fault", 0, "design fault current, A (required)")
		faultT    = fs.Float64("fault-t", 0.5, "fault clearing time, s")
		soilRho   = fs.Float64("soil-rho", 0, "surface soil resistivity, ohm·m (0 = 1/gamma1)")
		rockRho   = fs.Float64("rock-rho", 0, "crushed-rock resistivity, ohm·m (0 = none)")
		rockH     = fs.Float64("rock-h", 0.1, "crushed-rock thickness, m")
		weight    = fs.String("weight", "50kg", "body weight for the limits: 50kg | 70kg")
		vres      = fs.Float64("voltage-res", 0, "surface sampling resolution, m (0 = engine default)")
		starts    = fs.Int("starts", 0, "multi-start descents (0 = engine default)")
		seed      = fs.Int64("seed", 0, "search seed (0 = engine default)")
		maxEvals  = fs.Int("max-evals", 0, "objective evaluation budget (0 = engine default)")
		seriesTol = fs.Float64("series-tol", 0, "image-series truncation tolerance (0 = engine default)")
		rodElems  = fs.Int("rod-elements", 0, "minimum elements per rod")
		workers   = fs.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		schedule  = fs.String("schedule", "dynamic,1", "loop schedule: static|dynamic|guided[,chunk]")
		jsonOut   = fs.Bool("json", false, "stream NDJSON progress lines instead of text")
		htmlOut   = fs.String("html", "", "write the winning design's HTML report here")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %q", fs.Args())
	}
	if *fault <= 0 {
		return fmt.Errorf("-fault is required (the design fault current drives the safety checks)")
	}

	var model earthing.SoilModel
	switch *soilKind {
	case "uniform":
		if *gamma1 <= 0 {
			return fmt.Errorf("-gamma1 %g must be positive", *gamma1)
		}
		model = earthing.UniformSoil(*gamma1)
	case "two-layer":
		if *gamma1 <= 0 || *gamma2 <= 0 || *h1 <= 0 {
			return fmt.Errorf("two-layer soil parameters must be positive")
		}
		model = earthing.TwoLayerSoil(*gamma1, *gamma2, *h1)
	default:
		return fmt.Errorf("unknown soil model %q (want uniform or two-layer)", *soilKind)
	}
	sch, err := earthing.ParseSchedule(*schedule)
	if err != nil {
		return err
	}
	crit := earthing.SafetyCriteria{
		FaultDuration:    *faultT,
		SoilRho:          *soilRho,
		SurfaceRho:       *rockRho,
		SurfaceThickness: *rockH,
	}
	if crit.SoilRho == 0 {
		crit.SoilRho = 1 / *gamma1
	}
	switch *weight {
	case "50kg":
		crit.Weight = earthing.Body50kg
	case "70kg":
		crit.Weight = earthing.Body70kg
	default:
		return fmt.Errorf("unknown -weight %q (want 50kg or 70kg)", *weight)
	}

	spec := earthing.OptimizeSpec{
		Width: *width, Height: *height,
		Model:           model,
		FaultCurrent:    *fault,
		Safety:          crit,
		ConductorRadius: *radius,
		RodLength:       *rodLen,
		RodRadius:       *rodRadius,
		MinLines:        *minLines,
		MaxLines:        *maxLines,
		MaxRods:         *maxRods,
		MinDepth:        *minDepth,
		MaxDepth:        *maxDepth,
		DepthStep:       *depthStep,
		ConductorCost:   *condCost,
		RodCost:         *rodCost,
		VoltageRes:      *vres,
	}
	opt := earthing.OptimizeOptions{
		Starts:   *starts,
		Seed:     *seed,
		MaxEvals: *maxEvals,
	}
	opt.Config.RodElements = *rodElems
	opt.Config.BEM.SeriesTol = *seriesTol
	opt.Config.BEM.Workers = *workers
	opt.Config.BEM.Schedule = sch

	enc := json.NewEncoder(stdout)
	emit := func(p earthing.OptimizeProgress) error {
		if *jsonOut {
			return enc.Encode(p)
		}
		return printProgress(stdout, p)
	}
	best, stats, err := earthing.OptimizeStream(context.Background(), spec, opt, emit)
	noFeasible := errors.Is(err, earthing.ErrNoFeasibleOptimize)
	if err != nil && !noFeasible {
		return err
	}

	if *jsonOut {
		if err := enc.Encode(struct {
			Final bool                      `json:"final"`
			Best  *earthing.OptimizedDesign `json:"best"`
			Stats earthing.OptimizeStats    `json:"stats"`
			Error string                    `json:"error,omitempty"`
		}{true, best, stats, errString(err)}); err != nil {
			return err
		}
	} else {
		//lint:ignore errdrop transcript status line; a failed console write has no recovery path
		fmt.Fprintf(stdout, "\nsearch: %d candidates evaluated, %d cache hits of %d requests, %d generations, %d/%d starts converged\n",
			stats.Evaluated, stats.CacheHits, stats.Requested, stats.Generations, stats.Converged, stats.Starts)
		printSelected(stdout, best, spec.FaultCurrent)
		//lint:ignore errdrop transcript status line; a failed console write has no recovery path
		fmt.Fprintln(stdout, "grid:")
		if err := earthing.WriteGrid(stdout, best.Grid); err != nil {
			return err
		}
	}
	if noFeasible {
		return err
	}

	if *htmlOut != "" {
		// Re-analyze at the design-fault GPR so the report's potentials and
		// voltages are at fault scale.
		reportRes, err := earthing.Analyze(context.Background(), best.Grid, model, earthing.Config{
			GPR:         best.GPR,
			RodElements: *rodElems,
			BEM:         earthing.BEMOptions{Workers: *workers, Schedule: sch, SeriesTol: *seriesTol},
		})
		if err != nil {
			return err
		}
		err = fsio.WriteFile(*htmlOut, func(f io.Writer) error {
			return report.BuildHTML(f, reportRes, best.Grid, report.Options{
				Title:    "Automated grounding design",
				Criteria: crit,
			})
		})
		if err != nil {
			return err
		}
		//lint:ignore errdrop transcript status line; a failed console write has no recovery path
		fmt.Fprintln(stdout, "HTML report written to", *htmlOut)
	}
	return nil
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// printProgress renders one improving generation as a trace line.
func printProgress(w io.Writer, p earthing.OptimizeProgress) error {
	b := p.Best
	_, err := fmt.Fprintf(w, "gen %2d: %dx%-2d lattice, %d rods, depth %.2f m  cost %8.1f  Req %.4f ohm  GPR %7.1f V  touch %6.1f/%.1f V  step %6.1f/%.1f V  [%s]\n",
		p.Generation, b.NX, b.NY, b.Rods, b.Depth, b.Cost, b.Req, b.GPR,
		b.Voltages.MaxTouch, b.Verdict.TouchLimit,
		b.Voltages.MaxStep, b.Verdict.StepLimit,
		feasibility(b.Feasible))
	return err
}

// printSelected renders the final design summary.
func printSelected(w io.Writer, d *earthing.OptimizedDesign, fault float64) {
	//lint:ignore errdrop transcript status line; a failed console write has no recovery path
	fmt.Fprintf(w, "selected: %dx%d lattice, %d rods, depth %.2f m (cost %.1f, %s)\n",
		d.NX, d.NY, d.Rods, d.Depth, d.Cost, feasibility(d.Feasible))
	//lint:ignore errdrop transcript status line; a failed console write has no recovery path
	fmt.Fprintf(w, "  Req %.4f ohm -> GPR %.1f V at %.0f A\n", d.Req, d.GPR, fault)
	//lint:ignore errdrop transcript status line; a failed console write has no recovery path
	fmt.Fprintf(w, "  touch %.1f V (limit %.1f), step %.1f V (limit %.1f), mesh %.1f V (limit %.1f)\n",
		d.Voltages.MaxTouch, d.Verdict.TouchLimit,
		d.Voltages.MaxStep, d.Verdict.StepLimit,
		d.Voltages.MaxMesh, d.Verdict.TouchLimit)
}

func feasibility(ok bool) string {
	if ok {
		return "feasible"
	}
	return "violates limits"
}
