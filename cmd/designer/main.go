// Command designer sizes a grounding grid automatically: it searches lattice
// densities over a given area until the equivalent-resistance and
// IEEE Std 80 safety targets are met, then emits the winning geometry (and
// optionally a full HTML report).
//
// Examples:
//
//	designer -width 70 -height 70 -soil two-layer -gamma1 0.0067 -gamma2 0.025 -h1 1.5 \
//	         -fault 25000 -fault-t 0.5 -rock-rho 2500 -max-req 1.0 > design.txt
//	designer -width 40 -height 30 -soil uniform -gamma1 0.02 -max-req 0.8 -html design.html
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"earthing"
	"earthing/internal/fsio"
	"earthing/internal/report"
)

func main() {
	var (
		width   = flag.Float64("width", 60, "plan width, m")
		height  = flag.Float64("height", 60, "plan height, m")
		depth   = flag.Float64("depth", 0.8, "burial depth, m")
		radius  = flag.Float64("radius", 0.006, "conductor radius, m")
		minN    = flag.Int("min-lines", 3, "minimum lattice lines per direction")
		maxN    = flag.Int("max-lines", 12, "maximum lattice lines per direction")
		rods    = flag.Int("rods", 0, "perimeter rods to add to every candidate")
		rodLen  = flag.Float64("rod-len", 3, "rod length, m")
		soilK   = flag.String("soil", "uniform", "soil model: uniform | two-layer")
		gamma1  = flag.Float64("gamma1", 0.02, "layer 1 conductivity (ohm·m)^-1")
		gamma2  = flag.Float64("gamma2", 0.02, "layer 2 conductivity (two-layer)")
		h1      = flag.Float64("h1", 1.0, "layer 1 thickness, m")
		maxReq  = flag.Float64("max-req", 0, "maximum equivalent resistance, ohm (0 = no limit)")
		fault   = flag.Float64("fault", 0, "design fault current, A (enables safety checks)")
		faultT  = flag.Float64("fault-t", 0.5, "fault clearing time, s")
		rockRho = flag.Float64("rock-rho", 0, "crushed-rock resistivity, ohm·m (0 = none)")
		rockH   = flag.Float64("rock-h", 0.1, "crushed-rock thickness, m")
		html    = flag.String("html", "", "write the winning design's HTML report here")
	)
	flag.Parse()

	var model earthing.SoilModel
	switch *soilK {
	case "uniform":
		model = earthing.UniformSoil(*gamma1)
	case "two-layer":
		model = earthing.TwoLayerSoil(*gamma1, *gamma2, *h1)
	default:
		fmt.Fprintln(os.Stderr, "designer: unknown soil model", *soilK)
		os.Exit(1)
	}

	space := earthing.DesignSpace{
		Width: *width, Height: *height, Depth: *depth, Radius: *radius,
		MinLines: *minN, MaxLines: *maxN,
		PerimeterRods: *rods, RodLength: *rodLen,
	}
	tg := earthing.DesignTargets{MaxReq: *maxReq, FaultCurrent: *fault}
	if *fault > 0 {
		tg.Safety = earthing.SafetyCriteria{
			FaultDuration:    *faultT,
			SoilRho:          1 / *gamma1,
			SurfaceRho:       *rockRho,
			SurfaceThickness: *rockH,
		}
	}

	best, trace, err := earthing.DesignSearch(space, model, tg, earthing.Config{})
	for _, c := range trace {
		status := "fail"
		if c.Passes {
			status = "PASS"
		}
		fmt.Fprintf(os.Stderr, "%2dx%-2d lattice: Req=%.4f ohm, %.0f m of conductor",
			c.Lines, c.Lines, c.Result.Req, c.CostLength)
		if tg.FaultCurrent > 0 {
			fmt.Fprintf(os.Stderr, ", GPR=%.0f V, touch %.0f V, step %.0f V",
				c.GPR, c.Voltages.MaxTouch, c.Voltages.MaxStep)
		}
		fmt.Fprintf(os.Stderr, " [%s]\n", status)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "designer:", err)
		os.Exit(1)
	}

	fmt.Fprintf(os.Stderr, "\nselected: %dx%d lattice (%.0f m of electrode)\n",
		best.Lines, best.Lines, best.CostLength)
	if err := earthing.WriteGrid(os.Stdout, best.Grid); err != nil {
		fmt.Fprintln(os.Stderr, "designer:", err)
		os.Exit(1)
	}

	if *html != "" {
		opt := report.Options{Title: "Automated grounding design"}
		reportRes := best.Result
		if *fault > 0 {
			opt.Criteria = tg.Safety
			// Re-analyze at the design-fault GPR so the report's potentials
			// and voltages are at fault scale.
			reportRes, err = earthing.Analyze(context.Background(), best.Grid, model, earthing.Config{GPR: best.GPR})
			if err != nil {
				fmt.Fprintln(os.Stderr, "designer:", err)
				os.Exit(1)
			}
		}
		err := fsio.WriteFile(*html, func(f io.Writer) error {
			return report.BuildHTML(f, reportRes, best.Grid, opt)
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "designer:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "HTML report written to", *html)
	}
}
