package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"earthing"
)

var update = flag.Bool("update", false, "rewrite the golden transcripts")

func goldenPath(name string) string {
	return filepath.Join("..", "..", "artifacts", "golden", name+".golden")
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := goldenPath(name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run go test -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("transcript differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// fastArgs is a small, quick synthesis problem: a 10×10 m site in uniform
// soil with a tight eval budget. The seed pins the search trajectory.
func fastArgs(extra ...string) []string {
	args := []string{
		"-width", "10", "-height", "10",
		"-soil", "uniform", "-gamma1", "0.02",
		"-fault", "100", "-fault-t", "0.5",
		"-min-lines", "2", "-max-lines", "4", "-max-rods", "2",
		"-min-depth", "0.5", "-max-depth", "0.7", "-depth-step", "0.1",
		"-rod-elements", "2", "-series-tol", "1e-2",
		"-voltage-res", "2.5",
		"-starts", "2", "-max-evals", "120", "-seed", "1",
		"-workers", "1",
	}
	return append(args, extra...)
}

// TestGoldenTranscript pins the whole synthesis transcript — every improving
// generation, the search counters, the selected design and its grid text.
// Everything the CLI prints is deterministic for a fixed seed, so no
// filtering is needed.
func TestGoldenTranscript(t *testing.T) {
	var buf bytes.Buffer
	if err := run(fastArgs(), &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	checkGolden(t, "designer-uniform-fast", buf.String())
}

// TestDeterministicAcrossWorkers asserts the CLI's core contract: the full
// transcript is byte-identical at any -workers setting.
func TestDeterministicAcrossWorkers(t *testing.T) {
	var base string
	for _, workers := range []string{"1", "2", "4"} {
		args := fastArgs()
		args[len(args)-1] = workers
		var buf bytes.Buffer
		if err := run(args, &buf); err != nil {
			t.Fatalf("workers=%s: %v", workers, err)
		}
		if base == "" {
			base = buf.String()
			continue
		}
		if buf.String() != base {
			t.Errorf("workers=%s transcript differs from workers=1", workers)
		}
	}
}

// TestJSONStream checks the -json mode: NDJSON progress lines then a final
// summary object, mirroring the /v1/optimize wire format.
func TestJSONStream(t *testing.T) {
	var buf bytes.Buffer
	if err := run(fastArgs("-json"), &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < 2 {
		t.Fatalf("want progress + final lines, got %d", len(lines))
	}
	var last struct {
		Final bool                      `json:"final"`
		Best  *earthing.OptimizedDesign `json:"best"`
		Stats earthing.OptimizeStats    `json:"stats"`
		Error string                    `json:"error"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatalf("final line: %v", err)
	}
	if !last.Final || last.Best == nil || !last.Best.Feasible || last.Error != "" {
		t.Fatalf("bad final line: %+v", last)
	}
	if last.Stats.Evaluated == 0 || last.Stats.Requested != last.Stats.Evaluated+last.Stats.CacheHits {
		t.Fatalf("inconsistent stats: %+v", last.Stats)
	}
	for _, l := range lines[:len(lines)-1] {
		var p earthing.OptimizeProgress
		if err := json.Unmarshal([]byte(l), &p); err != nil {
			t.Fatalf("progress line %q: %v", l, err)
		}
		if p.Best.Grid != nil {
			t.Fatalf("progress line should not serialize the grid")
		}
	}
}

// TestNoFeasible drives a hopeless fault current: run prints the
// least-violating design and returns the sentinel error.
func TestNoFeasible(t *testing.T) {
	args := fastArgs()
	for i, a := range args {
		if a == "-fault" {
			args[i+1] = "1e6"
		}
	}
	var buf bytes.Buffer
	err := run(args, &buf)
	if !errors.Is(err, earthing.ErrNoFeasibleOptimize) {
		t.Fatalf("want ErrNoFeasibleOptimize, got %v", err)
	}
	if !strings.Contains(buf.String(), "violates limits") {
		t.Fatalf("transcript should show the least-violating design:\n%s", buf.String())
	}
}

// TestBadArgs covers the flag validation paths.
func TestBadArgs(t *testing.T) {
	cases := [][]string{
		{},                         // missing -fault
		fastArgs("extra"),          // positional args
		fastArgs("-soil", "bogus"), // unknown soil
		fastArgs("-weight", "90kg"),
		fastArgs("-gamma1", "-1"),
		fastArgs("-schedule", "bogus"),
	}
	for _, args := range cases {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Errorf("args %q: want error", args)
		}
	}
}

// TestHTMLReport checks the -html path writes a report for the winner.
func TestHTMLReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "design.html")
	var buf bytes.Buffer
	if err := run(fastArgs("-html", out), &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "Automated grounding design") {
		t.Fatalf("report missing title")
	}
	if !strings.Contains(buf.String(), "HTML report written to") {
		t.Fatalf("transcript missing report note")
	}
}
