// Command groundd serves grounding analyses over HTTP: POST a scenario
// (grid + soil + discretization) to /v1/solve, /v1/raster or /v1/safety and
// get resistance, surface-potential fields or IEEE Std 80 verdicts back as
// JSON. Repeat scenarios are served from an LRU of factorized systems;
// load is shed with 429 when the admission queue fills and 504 when a
// request's deadline elapses.
//
//	groundd -addr :8080 &
//	curl -s localhost:8080/v1/solve -d '{
//	  "grid": {"builtin": "barbera"},
//	  "soil": {"kind": "uniform", "gamma1": 0.0125},
//	  "gpr": 10000
//	}'
//
// On SIGINT/SIGTERM the server drains gracefully: /readyz turns 503 so load
// balancers stop routing here, new solves are refused with a Retry-After
// hint, and in-flight requests get up to -drain-timeout to finish before
// the process exits.
package main

import (
	"expvar"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"earthing/internal/cluster"
	"earthing/internal/server"
	"earthing/internal/store"
)

// parsePeers turns "-peers id1=http://host1,id2=http://host2" into ring
// membership. The local node is appended automatically (with an empty URL —
// it is never dialed) when the list does not already name it.
func parsePeers(spec, nodeID string) ([]cluster.Member, error) {
	var members []cluster.Member
	self := false
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, url, ok := strings.Cut(part, "=")
		if !ok || id == "" {
			return nil, fmt.Errorf("peer %q must be id=url", part)
		}
		if id == nodeID {
			self = true
		} else if url == "" {
			return nil, fmt.Errorf("peer %q needs a URL", id)
		}
		members = append(members, cluster.Member{ID: id, URL: url})
	}
	if !self {
		members = append(members, cluster.Member{ID: nodeID})
	}
	return members, nil
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "default parallel width per solve (0 = GOMAXPROCS)")
	maxConc := flag.Int("max-concurrent", 0, "concurrent scenario bound (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "admission queue depth (0 = 4x max-concurrent)")
	cache := flag.Int("cache", 64, "solved-system LRU entries (negative disables)")
	cacheBytes := flag.Int64("cache-bytes", 0, "LRU resident-byte bound (0 = 256 MiB default, negative disables)")
	storeDir := flag.String("store", "", "durable scenario store directory (empty disables persistence)")
	nodeID := flag.String("node-id", "", "this node's identity on the fleet ring (requires -peers)")
	peers := flag.String("peers", "", "fleet membership as id=url,... (requires -node-id)")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-request deadline")
	maxTimeout := flag.Duration("max-timeout", 2*time.Minute, "largest deadline a request may ask for")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "in-flight request budget after SIGINT/SIGTERM")
	healthCheck := flag.Bool("health-check", false, "reject numerically untrustworthy solves with 422")
	pprofOn := flag.Bool("pprof", false, "mount /debug/pprof/")
	flag.Parse()

	if *workers < 0 {
		fmt.Fprintf(os.Stderr, "groundd: -workers %d must be non-negative\n", *workers)
		os.Exit(2)
	}
	if *maxConc < 0 || *queue < 0 {
		fmt.Fprintf(os.Stderr, "groundd: -max-concurrent and -queue must be non-negative\n")
		os.Exit(2)
	}
	if *drainTimeout <= 0 {
		fmt.Fprintf(os.Stderr, "groundd: -drain-timeout must be positive\n")
		os.Exit(2)
	}

	if (*nodeID == "") != (*peers == "") {
		fmt.Fprintf(os.Stderr, "groundd: -node-id and -peers must be set together\n")
		os.Exit(2)
	}

	cfg := server.Config{
		MaxConcurrent:  *maxConc,
		QueueDepth:     *queue,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		CacheEntries:   *cache,
		CacheBytes:     *cacheBytes,
		Workers:        *workers,
		HealthCheck:    *healthCheck,
		EnablePprof:    *pprofOn,
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir, store.Options{})
		if err != nil {
			log.Fatalf("groundd: store: %v", err)
		}
		cfg.Store = st
	}
	if *nodeID != "" {
		members, err := parsePeers(*peers, *nodeID)
		if err != nil {
			log.Fatalf("groundd: -peers: %v", err)
		}
		cfg.Fleet = &server.FleetConfig{NodeID: *nodeID, Members: members}
	}

	srv, err := server.NewFleet(cfg)
	if err != nil {
		log.Fatalf("groundd: %v", err)
	}
	srv.PublishExpvar()

	mux := http.NewServeMux()
	mux.Handle("/", srv)
	mux.Handle("GET /debug/vars", expvar.Handler())

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("groundd: listen: %v", err)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	log.Printf("groundd: listening on %s", ln.Addr())
	if err := server.RunUntilSignal(srv, mux, ln, sig, *drainTimeout, log.Printf); err != nil {
		log.Fatal(err)
	}
}
