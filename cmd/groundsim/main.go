// Command groundsim analyzes a grounding grid: it computes the equivalent
// resistance, fault current, surface potentials and IEEE Std 80 safety
// verdict for a grid described in the text format of package grid (or one of
// the built-in paper grids), under a uniform, two-layer or N-layer soil
// model.
//
// Examples:
//
//	groundsim -builtin barbera -soil two-layer -gamma1 0.005 -gamma2 0.016 -h1 1.0 -gpr 10000
//	groundsim -grid mygrid.txt -soil uniform -gamma1 0.02 -surface out.csv
//	groundsim -builtin balaidos -soil uniform -gamma1 0.02 -check -fault-t 0.5
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"earthing"
	"earthing/internal/fsio"
	"earthing/internal/report"
)

func main() {
	var (
		gridFile = flag.String("grid", "", "grid file in text format (conductor/rod lines); - for stdin")
		builtin  = flag.String("builtin", "", "built-in grid: barbera | balaidos")
		soilKind = flag.String("soil", "uniform", "soil model: uniform | two-layer | multi")
		gamma1   = flag.Float64("gamma1", 0.02, "layer 1 conductivity (ohm·m)^-1")
		gamma2   = flag.Float64("gamma2", 0.02, "layer 2 conductivity (two-layer)")
		h1       = flag.Float64("h1", 1.0, "layer 1 thickness in m (two-layer)")
		multi    = flag.String("multi", "", "multi: comma list gamma1,h1,gamma2,h2,...,gammaN")
		gpr      = flag.Float64("gpr", 10_000, "ground potential rise in volts")
		maxLen   = flag.Float64("maxlen", 0, "max element length in m (0 = one element per conductor)")
		workers  = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		schedule = flag.String("schedule", "dynamic,1", "loop schedule: static|dynamic|guided[,chunk]")
		surface  = flag.String("surface", "", "write surface potential raster CSV to this file")
		stepmap  = flag.String("stepmap", "", "write per-metre step voltage raster CSV to this file")
		ascii    = flag.Bool("ascii", false, "print an ASCII surface potential map")
		jsonOut  = flag.Bool("json", false, "emit the analysis summary as JSON instead of text")
		htmlOut  = flag.String("html", "", "write a full HTML design report to this file")
		leakage  = flag.Int("leakage", 0, "print the top-N leaking elements")
		check    = flag.Bool("check", false, "check IEEE Std 80 step/touch limits")
		faultT   = flag.Float64("fault-t", 0.5, "fault clearing time in s (with -check)")
		rockRho  = flag.Float64("rock-rho", 0, "surface layer resistivity in ohm·m (with -check; 0 = none)")
		rockH    = flag.Float64("rock-h", 0.1, "surface layer thickness in m (with -check)")
	)
	flag.Parse()

	if err := run(*gridFile, *builtin, *soilKind, *gamma1, *gamma2, *h1, *multi,
		*gpr, *maxLen, *workers, *schedule, *surface, *stepmap, *htmlOut, *jsonOut, *ascii, *leakage, *check, *faultT, *rockRho, *rockH); err != nil {
		fmt.Fprintln(os.Stderr, "groundsim:", err)
		os.Exit(1)
	}
}

func run(gridFile, builtin, soilKind string, gamma1, gamma2, h1 float64, multi string,
	gpr, maxLen float64, workers int, schedule, surface, stepmap, htmlOut string, jsonOut, ascii bool, leakage int, check bool,
	faultT, rockRho, rockH float64) error {

	g, err := loadGrid(gridFile, builtin)
	if err != nil {
		return err
	}
	model, err := buildSoil(soilKind, gamma1, gamma2, h1, multi)
	if err != nil {
		return err
	}
	sch, err := earthing.ParseSchedule(schedule)
	if err != nil {
		return err
	}

	res, err := earthing.Analyze(g, model, earthing.Config{
		GPR:        gpr,
		MaxElemLen: maxLen,
		BEM:        earthing.BEMOptions{Workers: workers, Schedule: sch},
	})
	if err != nil {
		return err
	}
	if jsonOut {
		if err := res.WriteJSON(os.Stdout); err != nil {
			return err
		}
	} else if err := res.WriteReport(os.Stdout); err != nil {
		return err
	}

	if surface != "" || ascii {
		r := earthing.SurfacePotential(res, earthing.SurfaceOptions{Workers: workers})
		if ascii {
			if err := earthing.WriteRasterASCII(os.Stdout, r); err != nil {
				return err
			}
		}
		if surface != "" {
			err := fsio.WriteFile(surface, func(f io.Writer) error {
				return earthing.WriteRasterCSV(f, r)
			})
			if err != nil {
				return err
			}
			fmt.Println("surface potential written to", surface)
		}
	}

	if stepmap != "" {
		r := earthing.StepVoltageMap(res, earthing.SurfaceOptions{Workers: workers})
		err := fsio.WriteFile(stepmap, func(f io.Writer) error {
			return earthing.WriteRasterCSV(f, r)
		})
		if err != nil {
			return err
		}
		fmt.Println("step voltage map written to", stepmap)
		if check {
			crit := earthing.SafetyCriteria{
				FaultDuration:    faultT,
				SoilRho:          1 / gamma1,
				SurfaceRho:       rockRho,
				SurfaceThickness: rockH,
			}
			if err := crit.Validate(); err != nil {
				return err
			}
			limit := crit.StepLimit()
			_, max := r.MinMax()
			fmt.Printf("step map: max %.0f V vs limit %.0f V; %.1f%% of surveyed area exceeds\n",
				max, limit, 100*earthing.FractionExceeding(r.V, limit))
		}
	}

	if htmlOut != "" {
		opt := report.Options{}
		if check {
			opt.Criteria = earthing.SafetyCriteria{
				FaultDuration:    faultT,
				SoilRho:          1 / gamma1,
				SurfaceRho:       rockRho,
				SurfaceThickness: rockH,
			}
		}
		err := fsio.WriteFile(htmlOut, func(f io.Writer) error {
			return report.BuildHTML(f, res, g, opt)
		})
		if err != nil {
			return err
		}
		fmt.Println("HTML report written to", htmlOut)
	}

	if leakage > 0 {
		rep := earthing.ComputeLeakage(res)
		if err := earthing.WriteLeakageSummary(os.Stdout, rep, leakage); err != nil {
			return err
		}
	}

	if check {
		v := earthing.ComputeVoltages(res, 1)
		crit := earthing.SafetyCriteria{
			FaultDuration:    faultT,
			SoilRho:          1 / gamma1,
			SurfaceRho:       rockRho,
			SurfaceThickness: rockH,
		}
		verdict, err := crit.Check(v.MaxStep, v.MaxTouch, v.MaxMesh)
		if err != nil {
			return err
		}
		fmt.Println("IEEE Std 80:", verdict)
		if !verdict.Safe() {
			fmt.Println("DESIGN NOT SAFE — increase conductor density, add rods, or improve the surface layer")
		}
	}
	return nil
}

func loadGrid(gridFile, builtin string) (*earthing.Grid, error) {
	switch {
	case builtin != "" && gridFile != "":
		return nil, fmt.Errorf("use either -grid or -builtin, not both")
	case builtin == "barbera":
		return earthing.Barbera(), nil
	case builtin == "balaidos":
		return earthing.Balaidos(), nil
	case builtin != "":
		return nil, fmt.Errorf("unknown builtin grid %q", builtin)
	case gridFile == "-":
		return earthing.ReadGrid(os.Stdin)
	case gridFile != "":
		f, err := os.Open(gridFile)
		if err != nil {
			return nil, err
		}
		//lint:ignore errdrop read-only descriptor; Close cannot lose data and the grid is already parsed
		defer f.Close()
		return earthing.ReadGrid(f)
	default:
		return nil, fmt.Errorf("specify -grid FILE or -builtin NAME")
	}
}

func buildSoil(kind string, gamma1, gamma2, h1 float64, multi string) (earthing.SoilModel, error) {
	switch kind {
	case "uniform":
		return earthing.UniformSoil(gamma1), nil
	case "two-layer":
		return earthing.TwoLayerSoil(gamma1, gamma2, h1), nil
	case "multi":
		if multi == "" {
			return nil, fmt.Errorf("-soil multi requires -multi gamma1,h1,gamma2,...")
		}
		parts := strings.Split(multi, ",")
		if len(parts)%2 != 1 {
			return nil, fmt.Errorf("-multi needs an odd count: g1,h1,g2,h2,…,gN")
		}
		var gammas, hs []float64
		for i, p := range parts {
			v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				return nil, fmt.Errorf("bad -multi value %q", p)
			}
			if i%2 == 0 {
				gammas = append(gammas, v)
			} else {
				hs = append(hs, v)
			}
		}
		return earthing.MultiLayerSoil(gammas, hs)
	default:
		return nil, fmt.Errorf("unknown soil model %q", kind)
	}
}
