// Command groundsim analyzes a grounding grid: it computes the equivalent
// resistance, fault current, surface potentials and IEEE Std 80 safety
// verdict for a grid described in the text format of package grid (or one of
// the built-in paper grids), under a uniform, two-layer or N-layer soil
// model.
//
// Examples:
//
//	groundsim -builtin barbera -soil two-layer -gamma1 0.005 -gamma2 0.016 -h1 1.0 -gpr 10000
//	groundsim -grid mygrid.txt -soil uniform -gamma1 0.02 -surface out.csv
//	groundsim -builtin balaidos -soil uniform -gamma1 0.02 -check -fault-t 0.5
//	groundsim -builtin balaidos -sweep scenarios.json -gpr 10000
//
// The -sweep mode batch-solves many soil/GPR variants of one grid through
// the sweep engine (one assembly per distinct soil model, amortized
// meshing); the scenario file is a JSON array of {id, soil, gpr} objects
// with the same soil spec as the groundd server.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"earthing"
	"earthing/internal/fsio"
	"earthing/internal/report"
	"earthing/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "groundsim:", err)
		os.Exit(1)
	}
}

// run parses args and executes the analysis, writing all output to stdout.
// Factored out of main so the end-to-end tests can drive the CLI in-process
// against golden transcripts.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("groundsim", flag.ContinueOnError)
	var (
		gridFile = fs.String("grid", "", "grid file in text format (conductor/rod lines); - for stdin")
		builtin  = fs.String("builtin", "", "built-in grid: barbera | balaidos")
		soilKind = fs.String("soil", "uniform", "soil model: uniform | two-layer | multi")
		gamma1   = fs.Float64("gamma1", 0.02, "layer 1 conductivity (ohm·m)^-1")
		gamma2   = fs.Float64("gamma2", 0.02, "layer 2 conductivity (two-layer)")
		h1       = fs.Float64("h1", 1.0, "layer 1 thickness in m (two-layer)")
		multi    = fs.String("multi", "", "multi: comma list gamma1,h1,gamma2,h2,...,gammaN")
		gpr      = fs.Float64("gpr", 10_000, "ground potential rise in volts")
		maxLen   = fs.Float64("maxlen", 0, "max element length in m (0 = one element per conductor)")
		workers  = fs.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		schedule = fs.String("schedule", "dynamic,1", "loop schedule: static|dynamic|guided[,chunk]")
		sweep    = fs.String("sweep", "", "JSON scenario file for a batch solve ([{id, soil, gpr}, ...]); - for stdin")
		scaled   = fs.Bool("scaled", false, "with -sweep: allow proportional-soil reuse (exact, not bit-identical)")
		surface  = fs.String("surface", "", "write surface potential raster CSV to this file")
		stepmap  = fs.String("stepmap", "", "write per-metre step voltage raster CSV to this file")
		ascii    = fs.Bool("ascii", false, "print an ASCII surface potential map")
		jsonOut  = fs.Bool("json", false, "emit the analysis summary as JSON instead of text")
		htmlOut  = fs.String("html", "", "write a full HTML design report to this file")
		leakage  = fs.Int("leakage", 0, "print the top-N leaking elements")
		check    = fs.Bool("check", false, "check IEEE Std 80 step/touch limits")
		faultT   = fs.Float64("fault-t", 0.5, "fault clearing time in s (with -check)")
		rockRho  = fs.Float64("rock-rho", 0, "surface layer resistivity in ohm·m (with -check; 0 = none)")
		rockH    = fs.Float64("rock-h", 0.1, "surface layer thickness in m (with -check)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %q", fs.Args())
	}
	if *workers < 0 {
		return fmt.Errorf("-workers %d must be non-negative", *workers)
	}

	g, err := loadGrid(*gridFile, *builtin)
	if err != nil {
		return err
	}
	sch, err := earthing.ParseSchedule(*schedule)
	if err != nil {
		return err
	}
	ctx := context.Background()

	if *sweep != "" {
		cfg := earthing.Config{
			GPR:        *gpr,
			MaxElemLen: *maxLen,
			BEM:        earthing.BEMOptions{Workers: *workers, Schedule: sch},
		}
		return runSweep(ctx, g, *sweep, cfg, *scaled, *jsonOut, stdout)
	}

	model, err := buildSoil(*soilKind, *gamma1, *gamma2, *h1, *multi)
	if err != nil {
		return err
	}
	res, err := earthing.Analyze(ctx, g, model, earthing.Config{
		GPR:        *gpr,
		MaxElemLen: *maxLen,
		BEM:        earthing.BEMOptions{Workers: *workers, Schedule: sch},
	})
	if err != nil {
		return err
	}
	if *jsonOut {
		if err := res.WriteJSON(stdout); err != nil {
			return err
		}
	} else if err := res.WriteReport(stdout); err != nil {
		return err
	}

	if *surface != "" || *ascii {
		r, err := earthing.SurfacePotential(ctx, res, earthing.SurfaceOptions{Workers: *workers})
		if err != nil {
			return err
		}
		if *ascii {
			if err := earthing.WriteRasterASCII(stdout, r); err != nil {
				return err
			}
		}
		if *surface != "" {
			err := fsio.WriteFile(*surface, func(f io.Writer) error {
				return earthing.WriteRasterCSV(f, r)
			})
			if err != nil {
				return err
			}
			//lint:ignore errdrop transcript status line; a failed console write has no recovery path
			fmt.Fprintln(stdout, "surface potential written to", *surface)
		}
	}

	if *stepmap != "" {
		r, err := earthing.StepVoltageMap(ctx, res, earthing.SurfaceOptions{Workers: *workers})
		if err != nil {
			return err
		}
		err = fsio.WriteFile(*stepmap, func(f io.Writer) error {
			return earthing.WriteRasterCSV(f, r)
		})
		if err != nil {
			return err
		}
		//lint:ignore errdrop transcript status line; a failed console write has no recovery path
		fmt.Fprintln(stdout, "step voltage map written to", *stepmap)
		if *check {
			crit := earthing.SafetyCriteria{
				FaultDuration:    *faultT,
				SoilRho:          1 / *gamma1,
				SurfaceRho:       *rockRho,
				SurfaceThickness: *rockH,
			}
			if err := crit.Validate(); err != nil {
				return err
			}
			limit := crit.StepLimit()
			_, max := r.MinMax()
			//lint:ignore errdrop transcript status line; a failed console write has no recovery path
			fmt.Fprintf(stdout, "step map: max %.0f V vs limit %.0f V; %.1f%% of surveyed area exceeds\n",
				max, limit, 100*earthing.FractionExceeding(r.V, limit))
		}
	}

	if *htmlOut != "" {
		opt := report.Options{}
		if *check {
			opt.Criteria = earthing.SafetyCriteria{
				FaultDuration:    *faultT,
				SoilRho:          1 / *gamma1,
				SurfaceRho:       *rockRho,
				SurfaceThickness: *rockH,
			}
		}
		err := fsio.WriteFile(*htmlOut, func(f io.Writer) error {
			return report.BuildHTML(f, res, g, opt)
		})
		if err != nil {
			return err
		}
		//lint:ignore errdrop transcript status line; a failed console write has no recovery path
		fmt.Fprintln(stdout, "HTML report written to", *htmlOut)
	}

	if *leakage > 0 {
		rep := earthing.ComputeLeakage(res)
		if err := earthing.WriteLeakageSummary(stdout, rep, *leakage); err != nil {
			return err
		}
	}

	if *check {
		v, err := earthing.ComputeVoltages(ctx, res, 1, earthing.SurfaceOptions{Workers: *workers})
		if err != nil {
			return err
		}
		crit := earthing.SafetyCriteria{
			FaultDuration:    *faultT,
			SoilRho:          1 / *gamma1,
			SurfaceRho:       *rockRho,
			SurfaceThickness: *rockH,
		}
		verdict, err := crit.Check(v.MaxStep, v.MaxTouch, v.MaxMesh)
		if err != nil {
			return err
		}
		//lint:ignore errdrop transcript status line; a failed console write has no recovery path
		fmt.Fprintln(stdout, "IEEE Std 80:", verdict)
		if !verdict.Safe() {
			//lint:ignore errdrop transcript status line; a failed console write has no recovery path
			fmt.Fprintln(stdout, "DESIGN NOT SAFE — increase conductor density, add rods, or improve the surface layer")
		}
	}
	return nil
}

// sweepSpec is one line of the -sweep scenario file: the soil in the same
// JSON spec the groundd server accepts, plus an optional id and GPR (0
// inherits the -gpr flag).
type sweepSpec struct {
	ID   string          `json:"id,omitempty"`
	Soil server.SoilSpec `json:"soil"`
	GPR  float64         `json:"gpr,omitempty"`
}

// runSweep executes the batch mode: all scenarios of the file against one
// grid, solved through the sweep engine. With -json every result streams as
// one NDJSON line the moment it completes; otherwise a summary table in
// scenario order is printed at the end.
func runSweep(ctx context.Context, g *earthing.Grid, file string, cfg earthing.Config, scaled, jsonOut bool, stdout io.Writer) error {
	var rd io.Reader
	if file == "-" {
		rd = os.Stdin
	} else {
		f, err := os.Open(file)
		if err != nil {
			return err
		}
		//lint:ignore errdrop read-only descriptor; Close cannot lose data and the specs are already parsed
		defer f.Close()
		rd = f
	}
	dec := json.NewDecoder(rd)
	dec.DisallowUnknownFields()
	var specs []sweepSpec
	if err := dec.Decode(&specs); err != nil {
		return fmt.Errorf("-sweep %s: %w", file, err)
	}
	if len(specs) == 0 {
		return fmt.Errorf("-sweep %s: no scenarios", file)
	}

	scens := make([]earthing.SweepScenario, len(specs))
	models := make([]earthing.SoilModel, len(specs))
	for i, sp := range specs {
		model, err := sp.Soil.Build()
		if err != nil {
			return fmt.Errorf("-sweep scenario %d: %w", i, err)
		}
		models[i] = model
		scens[i] = earthing.SweepScenario{ID: sp.ID, Soil: model, GPR: sp.GPR}
	}
	var opts []earthing.Option
	if scaled {
		opts = append(opts, earthing.WithScaledReuse())
	}

	if jsonOut {
		enc := json.NewEncoder(stdout)
		return earthing.SweepStream(ctx, g, scens, cfg, func(r earthing.SweepResult) error {
			if r.Err != nil {
				// Per-scenario failure: its line reports the error; the rest
				// of the sweep keeps streaming.
				return enc.Encode(map[string]any{
					"id": r.ID, "index": r.Index, "reuse": r.Reuse, "error": r.Err.Error(),
				})
			}
			return enc.Encode(map[string]any{
				"id": r.ID, "index": r.Index, "reuse": r.Reuse,
				"gpr": r.Res.GPR, "reqOhms": r.Res.Req, "currentAmps": r.Res.Current,
				"elements": len(r.Res.Mesh.Elements), "dof": len(r.Res.Sigma),
				"wallMs": float64(r.Wall) / 1e6,
			})
		}, opts...)
	}

	results, err := earthing.Sweep(ctx, g, scens, cfg, opts...)
	if err != nil {
		return err
	}
	//lint:ignore errdrop transcript table; a failed console write has no recovery path
	fmt.Fprintf(stdout, "%-12s %-40s %-10s %12s %10s %12s\n",
		"id", "soil", "reuse", "Req (ohm)", "I (kA)", "GPR (V)")
	var failed int
	for i, r := range results {
		if r.Err != nil {
			failed++
			//lint:ignore errdrop transcript table; a failed console write has no recovery path
			fmt.Fprintf(stdout, "%-12s %-40s %-10s failed: %v\n",
				r.ID, models[i].Describe(), r.Reuse, r.Err)
			continue
		}
		//lint:ignore errdrop transcript table; a failed console write has no recovery path
		fmt.Fprintf(stdout, "%-12s %-40s %-10s %12.4f %10.2f %12.0f\n",
			r.ID, models[i].Describe(), r.Reuse, r.Res.Req, r.Res.Current/1000, r.Res.GPR)
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d scenarios failed", failed, len(results))
	}
	return nil
}

func loadGrid(gridFile, builtin string) (*earthing.Grid, error) {
	switch {
	case builtin != "" && gridFile != "":
		return nil, fmt.Errorf("use either -grid or -builtin, not both")
	case builtin == "barbera":
		return earthing.Barbera(), nil
	case builtin == "balaidos":
		return earthing.Balaidos(), nil
	case builtin != "":
		return nil, fmt.Errorf("unknown builtin grid %q", builtin)
	case gridFile == "-":
		return earthing.ReadGrid(os.Stdin)
	case gridFile != "":
		f, err := os.Open(gridFile)
		if err != nil {
			return nil, err
		}
		//lint:ignore errdrop read-only descriptor; Close cannot lose data and the grid is already parsed
		defer f.Close()
		return earthing.ReadGrid(f)
	default:
		return nil, fmt.Errorf("specify -grid FILE or -builtin NAME")
	}
}

// validGamma guards the facade's soil constructors, which panic on
// non-physical parameters: CLI input must come back as an error instead.
func validGamma(name string, v float64) error {
	if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("%s %g must be a positive finite conductivity in (ohm·m)^-1", name, v)
	}
	return nil
}

func buildSoil(kind string, gamma1, gamma2, h1 float64, multi string) (earthing.SoilModel, error) {
	switch kind {
	case "uniform":
		if err := validGamma("-gamma1", gamma1); err != nil {
			return nil, err
		}
		return earthing.UniformSoil(gamma1), nil
	case "two-layer":
		if err := validGamma("-gamma1", gamma1); err != nil {
			return nil, err
		}
		if err := validGamma("-gamma2", gamma2); err != nil {
			return nil, err
		}
		if h1 <= 0 || math.IsNaN(h1) || math.IsInf(h1, 0) {
			return nil, fmt.Errorf("-h1 %g must be a positive finite thickness in m", h1)
		}
		return earthing.TwoLayerSoil(gamma1, gamma2, h1), nil
	case "multi":
		if multi == "" {
			return nil, fmt.Errorf("-soil multi requires -multi gamma1,h1,gamma2,...")
		}
		gammas, hs, err := parseMulti(multi)
		if err != nil {
			return nil, err
		}
		return earthing.MultiLayerSoil(gammas, hs)
	default:
		return nil, fmt.Errorf("unknown soil model %q", kind)
	}
}

// parseMulti splits the -multi flag's alternating gamma/thickness list:
// g1,h1,g2,h2,…,gN (an odd count; N conductivities, N−1 thicknesses).
func parseMulti(multi string) (gammas, hs []float64, err error) {
	parts := strings.Split(multi, ",")
	if len(parts)%2 != 1 {
		return nil, nil, fmt.Errorf("-multi needs an odd count: g1,h1,g2,h2,…,gN")
	}
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, nil, fmt.Errorf("bad -multi value %q", p)
		}
		if i%2 == 0 {
			gammas = append(gammas, v)
		} else {
			hs = append(hs, v)
		}
	}
	return gammas, hs, nil
}
