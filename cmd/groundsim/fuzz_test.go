package main

import (
	"testing"
)

// FuzzParseMulti drives the -multi soil-list parser and the multi-layer soil
// constructor behind it with arbitrary comma lists. The contract: bad input
// is an error, never a panic (the facade's soil constructors panic on
// non-physical parameters, so buildSoil must pre-validate everything it
// forwards).
func FuzzParseMulti(f *testing.F) {
	f.Add("0.005,1,0.016")
	f.Add("0.005,1,0.016,2,0.02")
	f.Add("1,2")               // even count
	f.Add("-1,2,3")            // negative conductivity
	f.Add("0,1,0")             // zero conductivity
	f.Add("1,-2,3")            // negative thickness
	f.Add("NaN,1,2")           // NaN sneaks through ParseFloat
	f.Add("Inf,1,2")           //
	f.Add("1e309,1,1")         // overflows to +Inf
	f.Add("a,b,c")             //
	f.Add("")                  //
	f.Add(",")                 //
	f.Add("1,,2")              //
	f.Add(" 0.01 , 1 , 0.02 ") // spaces tolerated
	f.Fuzz(func(t *testing.T, list string) {
		defer func() {
			if p := recover(); p != nil {
				t.Fatalf("buildSoil panicked on -multi %q: %v", list, p)
			}
		}()
		model, err := buildSoil("multi", 0, 0, 0, list)
		if err != nil {
			return
		}
		if model == nil {
			t.Fatalf("buildSoil(-multi %q) returned neither model nor error", list)
		}
		// An accepted model must be evaluable at the surface without blowing
		// up: conductivity of the top layer is positive and finite.
		if g := model.Conductivity(1); g <= 0 {
			t.Fatalf("accepted model has non-physical surface conductivity %g (-multi %q)", g, list)
		}
	})
}

// FuzzBuildSoilScalar drives the uniform and two-layer constructors with
// arbitrary scalar parameters: hostile values must error, not panic.
func FuzzBuildSoilScalar(f *testing.F) {
	f.Add("uniform", 0.02, 0.02, 1.0)
	f.Add("two-layer", 0.005, 0.016, 1.0)
	f.Add("uniform", -1.0, 0.0, 0.0)
	f.Add("two-layer", 0.005, -0.016, 1.0)
	f.Add("two-layer", 0.005, 0.016, -1.0)
	f.Add("uniform", 0.0, 0.0, 0.0)
	f.Fuzz(func(t *testing.T, kind string, gamma1, gamma2, h1 float64) {
		defer func() {
			if p := recover(); p != nil {
				t.Fatalf("buildSoil(%q, %g, %g, %g) panicked: %v", kind, gamma1, gamma2, h1, p)
			}
		}()
		_, _ = buildSoil(kind, gamma1, gamma2, h1, "")
	})
}
