package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden transcripts")

// filterTimings drops the wall-clock line of the report: everything else in
// the transcript — resistance, current, discretization, safety verdict — is
// deterministic and pinned by the golden files.
func filterTimings(s string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, "stage timings:") {
			continue
		}
		out = append(out, line)
	}
	return strings.Join(out, "\n")
}

func goldenPath(name string) string {
	return filepath.Join("..", "..", "artifacts", "golden", name+".golden")
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := goldenPath(name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run go test -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("transcript differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestGoldenTranscripts pins the end-to-end CLI output for the two paper
// grids: resistance, fault current and the IEEE Std 80 verdict. Worker count
// is fixed at 1 so the PCG solve is bit-reproducible.
func TestGoldenTranscripts(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{
			name: "groundsim-barbera-uniform",
			args: []string{"-builtin", "barbera", "-soil", "uniform", "-gamma1", "0.0125",
				"-gpr", "10000", "-workers", "1", "-check", "-fault-t", "0.5", "-rock-rho", "3000"},
		},
		{
			name: "groundsim-balaidos-twolayer",
			args: []string{"-builtin", "balaidos", "-soil", "two-layer",
				"-gamma1", "0.005", "-gamma2", "0.016", "-h1", "1.0",
				"-gpr", "10000", "-workers", "1", "-check"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(tc.args, &buf); err != nil {
				t.Fatalf("run: %v", err)
			}
			checkGolden(t, tc.name, filterTimings(buf.String()))
		})
	}
}

// sweepSpecsJSON is the -sweep scenario file used by the batch-mode tests:
// two GPR variants of one soil (exercising solve reuse) plus a distinct
// two-layer model (its own assembly).
const sweepSpecsJSON = `[
	{"id": "uniform", "soil": {"kind": "uniform", "gamma1": 0.020}},
	{"id": "uniform-2x", "soil": {"kind": "uniform", "gamma1": 0.020}, "gpr": 20000},
	{"id": "two-layer", "soil": {"kind": "two-layer", "gamma1": 0.0025, "gamma2": 0.020, "h1": 0.7}}
]`

func writeSweepFile(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "sweep.json")
	if err := os.WriteFile(path, []byte(sweepSpecsJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestSweepModeGolden pins the batch-mode table for the Balaidos grid at one
// worker (bit-reproducible PCG): the table carries no wall times, so the
// transcript is fully deterministic.
func TestSweepModeGolden(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-builtin", "balaidos", "-sweep", writeSweepFile(t),
		"-gpr", "10000", "-workers", "1"}, &buf)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "solve") {
		t.Errorf("GPR variant not served from solve reuse:\n%s", out)
	}
	checkGolden(t, "groundsim-sweep-balaidos", out)
}

// TestSweepModeJSON checks the streaming NDJSON output: one line per
// scenario with the reuse tier and Ohm's-law-consistent numbers.
func TestSweepModeJSON(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-builtin", "balaidos", "-sweep", writeSweepFile(t),
		"-gpr", "10000", "-workers", "1", "-json"}, &buf)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	dec := json.NewDecoder(&buf)
	reuse := map[string]string{}
	for dec.More() {
		var line struct {
			ID          string  `json:"id"`
			Reuse       string  `json:"reuse"`
			GPR         float64 `json:"gpr"`
			ReqOhms     float64 `json:"reqOhms"`
			CurrentAmps float64 `json:"currentAmps"`
		}
		if err := dec.Decode(&line); err != nil {
			t.Fatal(err)
		}
		reuse[line.ID] = line.Reuse
		if line.ReqOhms <= 0 || line.GPR <= 0 {
			t.Errorf("implausible line: %+v", line)
		}
	}
	want := map[string]string{"uniform": "assembled", "uniform-2x": "solve", "two-layer": "assembled"}
	for id, r := range want {
		if reuse[id] != r {
			t.Errorf("scenario %s: reuse %q, want %q", id, reuse[id], r)
		}
	}
}

// TestSweepModeBadInput: malformed scenario files surface as errors.
func TestSweepModeBadInput(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string]string{
		"empty.json":   `[]`,
		"badsoil.json": `[{"soil": {"kind": "uniform", "gamma1": -1}}]`,
		"unknown.json": `[{"soil": {"kind": "uniform", "gamma1": 0.02}, "bogus": 1}]`,
		"notjson.json": `scenario: nope`,
	} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := run([]string{"-builtin", "barbera", "-sweep", path}, &buf); err == nil {
			t.Errorf("%s accepted, want error", name)
		}
	}
	var buf bytes.Buffer
	if err := run([]string{"-builtin", "barbera", "-sweep", filepath.Join(dir, "missing.json")}, &buf); err == nil {
		t.Error("missing sweep file accepted")
	}
}

// TestRunRejectsHostileFlags: inputs that used to reach the panicking soil
// constructors must surface as errors.
func TestRunRejectsHostileFlags(t *testing.T) {
	cases := [][]string{
		{"-builtin", "barbera", "-soil", "uniform", "-gamma1", "-1"},
		{"-builtin", "barbera", "-soil", "uniform", "-gamma1", "0"},
		{"-builtin", "barbera", "-soil", "uniform", "-gamma1", "NaN"},
		{"-builtin", "barbera", "-soil", "two-layer", "-gamma2", "-3"},
		{"-builtin", "barbera", "-soil", "two-layer", "-h1", "0"},
		{"-builtin", "barbera", "-soil", "multi", "-multi", "1,2"},
		{"-builtin", "barbera", "-soil", "multi", "-multi", "1,-2,3"},
		{"-builtin", "barbera", "-soil", "multi", "-multi", "a,b,c"},
		{"-builtin", "barbera", "-workers", "-4"},
		{"-builtin", "barbera", "-schedule", "lifo"},
		{"-builtin", "nonesuch"},
		{"-builtin", "barbera", "-grid", "also.txt"},
		{"-builtin", "barbera", "stray-arg"},
		{},
	}
	for _, args := range cases {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Errorf("run(%q) succeeded, want error", args)
		}
	}
}

// TestMultiSoilRuns exercises the N-layer path end to end on a small grid.
func TestMultiSoilRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-layer kernels are slow")
	}
	dir := t.TempDir()
	gridFile := filepath.Join(dir, "g.txt")
	grid := "conductor 0 0 0.8 10 0 0.8 0.006\nconductor 0 0 0.8 0 10 0.8 0.006\n"
	if err := os.WriteFile(gridFile, []byte(grid), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err := run([]string{"-grid", gridFile, "-soil", "multi", "-multi", "0.005,1,0.016", "-workers", "1"}, &buf)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(buf.String(), "equivalent resistance Req:") {
		t.Errorf("report missing resistance line:\n%s", buf.String())
	}
}
