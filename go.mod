module earthing

go 1.22
