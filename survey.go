package earthing

import (
	"io"

	"earthing/internal/post"
	"earthing/internal/wenner"
)

// Wenner survey re-exports: the measurement side of soil modelling.
type (
	// SurveyMeasurement is one Wenner sounding (spacing, apparent
	// resistivity).
	SurveyMeasurement = wenner.Measurement
	// SoilFit is a fitted two-layer soil parameterization.
	SoilFit = wenner.Fit
	// SurveyInvertOptions bounds the two-layer inversion.
	SurveyInvertOptions = wenner.InvertOptions
)

// ApparentResistivity evaluates the Wenner forward model: the apparent
// resistivity a four-electrode array with spacing a would read over the
// soil model.
func ApparentResistivity(m SoilModel, a float64) float64 {
	return wenner.ApparentResistivity(m, a)
}

// ApparentResistivitySchlumberger evaluates the Schlumberger-array forward
// model (current electrodes at ±L, potential electrodes at ±l).
func ApparentResistivitySchlumberger(m SoilModel, bigL, smallL float64) float64 {
	return wenner.ApparentResistivitySchlumberger(m, bigL, smallL)
}

// SimulateSurvey synthesizes Wenner measurements over a model at the given
// spacings, with optional multiplicative noise drawn from randn.
func SimulateSurvey(m SoilModel, spacings []float64, noise float64, randn func() float64) []SurveyMeasurement {
	return wenner.Sound(m, spacings, noise, randn)
}

// SurveySpacings returns n logarithmically spaced electrode spacings.
func SurveySpacings(aMin, aMax float64, n int) []float64 {
	return wenner.LogSpacings(aMin, aMax, n)
}

// FitTwoLayerSoil inverts Wenner measurements into a two-layer soil model.
func FitTwoLayerSoil(data []SurveyMeasurement, opt SurveyInvertOptions) (SoilFit, error) {
	return wenner.InvertTwoLayer(data, opt)
}

// FitUniformSoil returns the best single resistivity and its RMS log misfit.
func FitUniformSoil(data []SurveyMeasurement) (rho, rmsLog float64, err error) {
	return wenner.FitUniform(data)
}

// Field quantities of a solved analysis.

// ElectricFieldAt returns E = −∇V at x in V/m at the configured GPR.
func ElectricFieldAt(res *Result, x Vec3) Vec3 {
	return res.Assembler().ElectricField(x, res.Sigma).Scale(res.GPR)
}

// CurrentDensityAt returns the conduction current density −γ∇V at x in
// A/m² at the configured GPR.
func CurrentDensityAt(res *Result, x Vec3) Vec3 {
	return res.Assembler().CurrentDensity(x, res.Sigma).Scale(res.GPR)
}

// Leakage distribution of a solved analysis.
type (
	// LeakageReport aggregates the per-element leakage distribution.
	LeakageReport = post.LeakageReport
	// ElementLeakage is one element's share of the fault current.
	ElementLeakage = post.ElementLeakage
)

// ComputeLeakage builds the per-element leakage-current distribution.
func ComputeLeakage(res *Result) LeakageReport {
	return post.ComputeLeakage(res.Mesh, res.Sigma, res.GPR)
}

// WriteLeakageCSV emits the leakage distribution as CSV.
func WriteLeakageCSV(w io.Writer, rep LeakageReport) error {
	return post.WriteLeakageCSV(w, rep)
}

// WriteLeakageSummary prints the top-n leaking elements and aggregates.
func WriteLeakageSummary(w io.Writer, rep LeakageReport, n int) error {
	return post.WriteLeakageSummary(w, rep, n)
}

// StepVoltageProfile samples the gradient-based step voltage |E_horizontal|
// × 1 m along a surface line.
func StepVoltageProfile(res *Result, x0, y0, x1, y1 float64, n int) (s, step []float64) {
	return post.StepProfileByField(res.Assembler(), res.Sigma, res.GPR, x0, y0, x1, y1, n)
}

// CrossSectionPotential samples the potential on a vertical plane from
// (x0, y0) to (x1, y1) down to maxDepth (raster X = arc length, Y = depth).
func CrossSectionPotential(res *Result, x0, y0, x1, y1, maxDepth float64, opt SurfaceOptions) *Raster {
	return post.CrossSection(res.Assembler(), res.Sigma, res.GPR, x0, y0, x1, y1, maxDepth, opt)
}
