// Balaidos: reproduce the paper's Example 2 (§5.2, Table 5.1) — the
// Balaidos substation grid (107 conductors + 67 rods) under three soil
// models, including model C where the rods straddle the layer interface and
// the expensive cross-layer kernels kick in.
//
//	go run ./examples/balaidos
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"earthing"
)

func main() {
	ctx := context.Background()
	g := earthing.Balaidos()
	fmt.Printf("Balaidos grid: %d conductors + %d rods, %.0f m of electrode\n",
		len(g.Conductors)-g.NumRods(), g.NumRods(), g.TotalLength())

	cases := []struct {
		name     string
		model    earthing.SoilModel
		rodElems int
		paperReq float64
		paperI   float64
	}{
		{"A: uniform γ=0.020", earthing.UniformSoil(0.020), 2, 0.3366, 29.71},
		{"B: 2-layer h=0.7 m (grid below interface)", earthing.TwoLayerSoil(0.0025, 0.020, 0.7), 2, 0.3522, 28.39},
		{"C: 2-layer h=1.0 m (rods straddle interface)", earthing.TwoLayerSoil(0.0025, 0.020, 1.0), 1, 0.4860, 20.58},
	}

	fmt.Printf("\n%-48s %10s %8s %12s %8s %12s\n", "Soil model", "Req (ohm)", "paper", "I (kA)", "paper", "matrix time")
	report := func(name string, req, current, paperReq, paperI float64, matrix time.Duration) {
		fmt.Printf("%-48s %10.4f %8.4f %12.2f %8.2f %12v\n",
			name, req, paperReq, current/1000, paperI, matrix)
	}

	// Models A and B share the paper's discretization (2 elements per rod,
	// 241 elements) and differ only in soil, so solve them as one batch: the
	// sweep engine builds each distinct mesh once and interleaves the two
	// assemblies on a single worker pool.
	swept, err := earthing.Sweep(ctx, g, []earthing.SweepScenario{
		{ID: "A", Soil: cases[0].model},
		{ID: "B", Soil: cases[1].model},
	}, earthing.Config{GPR: 10_000, RodElements: 2})
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range swept {
		if r.Err != nil {
			log.Fatalf("scenario %s: %v", r.ID, r.Err)
		}
		report(cases[i].name, r.Res.Req, r.Res.Current, cases[i].paperReq, cases[i].paperI, r.Assembly)
	}

	// Model C uses a coarser rod discretization (1 element per rod), so it
	// runs as its own analysis.
	c := cases[2]
	res, err := earthing.Analyze(ctx, g, c.model, earthing.Config{
		GPR:         10_000,
		RodElements: c.rodElems,
	})
	if err != nil {
		log.Fatal(err)
	}
	report(c.name, res.Req, res.Current, c.paperReq, c.paperI, res.Timings.MatrixGen)

	fmt.Println("\nModel C is the slowest: part of the rods lie in the upper layer and part in")
	fmt.Println("the lower, so cross-layer kernels with slower-converging series are required —")
	fmt.Println("exactly the effect the paper reports under Table 6.3.")
}
