// Package examples_test keeps every example program honest: each one must
// compile, and the fast ones must run to completion. The examples are the
// documented entry points of the library — a refactor that breaks one breaks
// the README before it breaks any test, unless this suite catches it first.
package examples_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"testing"
)

// examplePackages enumerates the example program directories.
func examplePackages(t *testing.T) []string {
	t.Helper()
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []string
	for _, e := range entries {
		if e.IsDir() {
			pkgs = append(pkgs, e.Name())
		}
	}
	sort.Strings(pkgs)
	if len(pkgs) == 0 {
		t.Fatal("no example packages found")
	}
	return pkgs
}

// TestExamplesBuild compiles every example program.
func TestExamplesBuild(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skipf("go toolchain unavailable: %v", err)
	}
	bin := t.TempDir()
	for _, pkg := range examplePackages(t) {
		pkg := pkg
		t.Run(pkg, func(t *testing.T) {
			cmd := exec.Command("go", "build", "-o", filepath.Join(bin, pkg), "./"+pkg)
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Errorf("go build ./examples/%s failed: %v\n%s", pkg, err, out)
			}
		})
	}
}

// TestExamplesRun executes the fast examples end to end and requires a clean
// exit. quickstart is the README's first contact with the library;
// schedules is the §6 parallelization walk-through (pinned to a small worker
// sweep to stay quick).
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("example executions take seconds")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skipf("go toolchain unavailable: %v", err)
	}
	cases := []struct {
		pkg  string
		args []string
	}{
		{pkg: "quickstart"},
		// The loose tolerance keeps the 11-run schedule sweep to a few
		// seconds; the sweep's structure (every loop × schedule combination)
		// is exercised identically.
		{pkg: "schedules", args: []string{"-workers", "2", "-tol", "1e-2"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.pkg, func(t *testing.T) {
			cmd := exec.Command("go", append([]string{"run", "./" + tc.pkg}, tc.args...)...)
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("go run ./examples/%s %v exited non-zero: %v\n%s", tc.pkg, tc.args, err, out)
			}
			if len(out) == 0 {
				t.Errorf("example %s produced no output", tc.pkg)
			}
		})
	}
}
