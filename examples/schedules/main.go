// Schedules: explore the paper's parallelization study (§6) — outer- vs
// inner-loop parallelization of matrix generation and the OpenMP schedule
// kinds — on the Barberá two-layer analysis.
//
// On hosts with fewer physical cores than workers, wall-clock speed-up
// saturates at the core count; the load-balance prediction (Σ busy/max busy)
// shows the schedule quality the paper's Table 6.2 measures.
//
//	go run ./examples/schedules [-workers 4]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"runtime"
	"time"

	"earthing"
	"earthing/internal/experiments"
)

func main() {
	workers := flag.Int("workers", 4, "parallel workers")
	tol := flag.Float64("tol", 1e-4, "kernel series tolerance (larger = faster demo)")
	flag.Parse()

	g := earthing.Barbera()
	model := earthing.TwoLayerSoil(0.005, 0.016, 1.0)
	fmt.Printf("host: %d logical CPUs; running with %d workers\n", runtime.NumCPU(), *workers)

	run := func(opt earthing.BEMOptions) (*earthing.Result, time.Duration) {
		// Loosened series tolerance keeps this demo snappy (<1 s per run).
		opt.SeriesTol = *tol
		start := time.Now()
		res, err := earthing.Analyze(context.Background(), g, model, earthing.Config{GPR: 10_000, BEM: opt})
		if err != nil {
			log.Fatal(err)
		}
		return res, time.Since(start)
	}

	// Sequential reference (the paper's speed-ups are referenced to it).
	_, seq := run(earthing.BEMOptions{Workers: 1})
	fmt.Printf("sequential matrix generation: %v\n\n", seq)

	fmt.Printf("%-12s %-8s %12s %10s %11s\n", "schedule", "loop", "wall", "speedup", "predicted")
	for _, loop := range []earthing.LoopStrategy{earthing.OuterLoop, earthing.InnerLoop} {
		for _, label := range []string{"static", "static,64", "static,1", "dynamic,1", "guided,1"} {
			sch, err := earthing.ParseSchedule(label)
			if err != nil {
				log.Fatal(err)
			}
			opt := earthing.BEMOptions{
				Workers:  *workers,
				Schedule: sch,
				Loop:     loop,
			}
			res, wall := run(opt)
			// Predicted = ideal-machine simulation of this loop/schedule on
			// the element-pair triangle (host-independent; the measured
			// column saturates at the physical core count).
			pred := experiments.PredictLoopSpeedup(len(res.Mesh.Elements), opt)
			fmt.Printf("%-12s %-8v %12v %10.2f %10.2fx\n",
				label, loop, wall, float64(seq)/float64(wall), pred)
		}
	}

	fmt.Println("\npaper's findings, reproduced: outer-loop parallelization with dynamic,1 (or")
	fmt.Println("guided with a small chunk) balances the linearly-shrinking columns best; static")
	fmt.Println("with large chunks leaves workers idle.")
}
