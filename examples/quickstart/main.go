// Quickstart: analyze a small rectangular grounding grid in a two-layer
// soil, print the design parameters, and sketch the surface potential.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"earthing"
)

func main() {
	ctx := context.Background()
	// A 60 × 60 m grid of 7 × 7 lattice lines (bare copper, 12 mm diameter)
	// buried at 0.8 m, with four 3 m rods at the corners.
	g := earthing.RectGrid(0, 0, 60, 60, 7, 7, 0.8, 0.006)
	for _, c := range [][2]float64{{0, 0}, {60, 0}, {0, 60}, {60, 60}} {
		g.AddRod(c[0], c[1], 0.8, 3.0, 0.007)
	}

	// Soil from a Wenner survey: 200 Ω·m top metre over 50 Ω·m.
	model := earthing.TwoLayerSoil(1.0/200, 1.0/50, 1.0)

	// Fault condition: 10 kV ground potential rise.
	res, err := earthing.Analyze(ctx, g, model, earthing.Config{GPR: 10_000})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("soil: %s\n", model.Describe())
	fmt.Printf("equivalent resistance: %.4f ohm\n", res.Req)
	fmt.Printf("fault current at 10 kV GPR: %.2f kA\n", res.Current/1000)
	fmt.Printf("matrix generation: %v, solve: %v (%d CG iterations)\n",
		res.Timings.MatrixGen, res.Timings.Solve, res.CG.Iterations)

	// Potential at a point 5 m outside the fence.
	p := res.PotentialAt(earthing.V(65, 30, 0))
	fmt.Printf("surface potential 5 m outside the grid: %.0f V (%.1f%% of GPR)\n",
		p, 100*p/10_000)

	// ASCII heat map of the earth surface potential.
	raster, err := earthing.SurfacePotential(ctx, res, earthing.SurfaceOptions{NX: 60, NY: 30, Margin: 20})
	if err != nil {
		log.Fatal(err)
	}
	if err := earthing.WriteRasterASCII(os.Stdout, raster); err != nil {
		log.Fatal(err)
	}
}
