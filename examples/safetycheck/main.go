// Safetycheck: a complete design iteration loop — analyze a candidate grid,
// check IEEE Std 80 step/touch limits, and densify the mesh until the design
// passes. This is the "Computer Aided Design system for grounding analysis"
// workflow of §5, closed around the safety criteria of §1.
//
//	go run ./examples/safetycheck
package main

import (
	"context"
	"fmt"
	"log"

	"earthing"
)

func main() {
	ctx := context.Background()
	// Site data: 25 kA single-line-to-ground fault cleared in 0.5 s, soil
	// 150 Ω·m over 40 Ω·m (1.5 m top layer), 10 cm crushed-rock yard
	// surfacing at 2500 Ω·m.
	const (
		faultCurrent = 25_000.0 // A
		clearingTime = 0.5      // s
		topRho       = 150.0    // Ω·m
		subRho       = 40.0
		topH         = 1.5
	)
	model := earthing.TwoLayerSoil(1/topRho, 1/subRho, topH)
	criteria := earthing.SafetyCriteria{
		FaultDuration:    clearingTime,
		SoilRho:          topRho,
		SurfaceRho:       2500,
		SurfaceThickness: 0.10,
	}
	fmt.Printf("limits: touch %.0f V, step %.0f V (Cs = %.3f)\n",
		criteria.TouchLimit(), criteria.StepLimit(), criteria.Cs())

	// Iterate lattice density until the design passes.
	for n := 3; n <= 9; n++ {
		g := earthing.RectGrid(0, 0, 70, 70, n, n, 0.8, 0.006)
		// Perimeter rods help control touch voltages at the fence.
		for i := 0; i < n; i++ {
			x := 70 * float64(i) / float64(n-1)
			g.AddRod(x, 0, 0.8, 3, 0.007)
			g.AddRod(x, 70, 0.8, 3, 0.007)
		}

		res, err := earthing.Analyze(ctx, g, model, earthing.Config{GPR: 1})
		if err != nil {
			log.Fatal(err)
		}
		// The GPR this grid develops under the design fault current. The
		// solve is linear in GPR, so rescale instead of re-analyzing.
		gpr := faultCurrent * res.Req
		res, err = res.WithGPR(gpr)
		if err != nil {
			log.Fatal(err)
		}

		v, err := earthing.ComputeVoltages(ctx, res, 1, earthing.SurfaceOptions{})
		if err != nil {
			log.Fatal(err)
		}
		verdict, err := criteria.Check(v.MaxStep, v.MaxTouch, v.MaxMesh)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("\n%dx%d lattice + %d rods: Req = %.3f ohm, GPR = %.0f V\n",
			n, n, 2*n, res.Req, gpr)
		fmt.Printf("  %v\n", verdict)
		if verdict.Safe() {
			fmt.Printf("\nDESIGN ACCEPTED: %.0f m of conductor, %d elements\n",
				g.TotalLength(), len(res.Mesh.Elements))
			return
		}
	}
	fmt.Println("\nno lattice density up to 9x9 passed — revisit rods, area or surfacing")
}
