// Threelayer: grounding analysis in a three-layer soil — the §4.2 extension
// of the paper ("this boundary element formulation can be applied to any
// other case with a higher number of layers", at the cost of double series).
// The grid sits in the top layer, so the fast double-series image kernels
// apply; the same analysis is repeated with the kernels forced through the
// numeric Hankel path to show the agreement and the cost difference.
//
//	go run ./examples/threelayer
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"earthing"
)

func main() {
	ctx := context.Background()
	// Site stratigraphy: 0.9 m of dry fill (250 Ω·m) over 2.5 m of loam
	// (50 Ω·m) over bedrock-influenced subsoil (125 Ω·m).
	model, err := earthing.MultiLayerSoil(
		[]float64{1.0 / 250, 1.0 / 50, 1.0 / 125},
		[]float64{0.9, 2.5},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("soil:", model.Describe())

	g := earthing.RectGrid(0, 0, 45, 45, 6, 6, 0.6, 0.006)
	fmt.Printf("grid: 6x6 lattice, %.0f m of conductor, buried at 0.6 m (top layer)\n\n",
		g.TotalLength())

	start := time.Now()
	res, err := earthing.Analyze(ctx, g, model, earthing.Config{GPR: 10_000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("three-layer analysis (double-series images): Req = %.4f ohm, I = %.2f kA in %v\n",
		res.Req, res.Current/1000, time.Since(start).Round(time.Millisecond))

	// Compare against the two-layer simplifications an engineer might be
	// tempted to use.
	for _, c := range []struct {
		name  string
		model earthing.SoilModel
	}{
		{"two-layer (ignore 3rd layer)", earthing.TwoLayerSoil(1.0/250, 1.0/50, 0.9)},
		{"uniform (top-layer value)", earthing.UniformSoil(1.0 / 250)},
		{"uniform (middle-layer value)", earthing.UniformSoil(1.0 / 50)},
	} {
		r2, err := earthing.Analyze(ctx, g, c.model, earthing.Config{GPR: 10_000})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-32s Req = %.4f ohm (%+.1f%%)\n",
			c.name, r2.Req, 100*(r2.Req-res.Req)/res.Req)
	}

	// Touch/step at the design GPR under the full model.
	v, err := earthing.ComputeVoltages(ctx, res, 1.5, earthing.SurfaceOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nat 10 kV GPR: max touch %.0f V, max step %.0f V\n", v.MaxTouch, v.MaxStep)
	fmt.Println("\nthe third layer matters: the middle conductive band drains current downward,")
	fmt.Println("which neither two-layer truncation captures — the paper's case for multilayer")
	fmt.Println("models, extended past two layers.")
}
