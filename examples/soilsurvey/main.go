// Soilsurvey: the full field-to-design pipeline — simulate a Wenner
// resistivity survey over an unknown stratified site, invert it into a
// two-layer soil model, and run the grounding analysis with the fitted
// model, comparing against the (wrong) uniform-model design the paper warns
// about.
//
//	go run ./examples/soilsurvey
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"earthing"
	"earthing/internal/soil"
	"earthing/internal/wenner"
)

func main() {
	// The "true" site soil, unknown to the engineer: 180 Ω·m of fill over
	// 45 Ω·m clay at 1.4 m.
	truth := soil.NewTwoLayer(1.0/180, 1.0/45, 1.4)

	// Step 1 — field survey: Wenner soundings at 12 spacings, 2 % noise.
	r := rand.New(rand.NewSource(3))
	data := wenner.Sound(truth, wenner.LogSpacings(0.3, 50, 12), 0.02, r.NormFloat64)
	fmt.Println("Wenner survey (a → apparent resistivity):")
	for _, d := range data {
		fmt.Printf("  %6.2f m  %7.1f ohm·m\n", d.Spacing, d.RhoA)
	}

	// Step 2 — inversion.
	fit, err := wenner.InvertTwoLayer(data, wenner.InvertOptions{})
	if err != nil {
		log.Fatal(err)
	}
	rhoU, rmsU, err := wenner.FitUniform(data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s\n", fit)
	fmt.Printf("uniform fallback: ρ = %.1f ohm·m (RMS log misfit %.3f — poor)\n", rhoU, rmsU)

	// Step 3 — grounding analysis with all three models as one batch. The
	// sweep engine builds one mesh per distinct interface depth and
	// interleaves all assemblies on a shared worker pool; each result is
	// bit-identical to a standalone earthing.Analyze of that model.
	g := earthing.RectGrid(0, 0, 50, 50, 6, 6, 0.8, 0.006)
	fitted := fit.Model()
	swept, err := earthing.Sweep(context.Background(), g, []earthing.SweepScenario{
		{ID: "fitted", Soil: fitted},
		{ID: "uniform", Soil: earthing.UniformSoil(1 / rhoU)},
		{ID: "truth", Soil: truth},
	}, earthing.Config{GPR: 10_000})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range swept {
		if r.Err != nil {
			log.Fatalf("scenario %s: %v", r.ID, r.Err)
		}
	}
	resFit, resUni, resTruth := swept[0].Res, swept[1].Res, swept[2].Res

	fmt.Printf("\n%-28s %12s %12s\n", "soil model", "Req (ohm)", "I (kA)")
	fmt.Printf("%-28s %12.4f %12.2f\n", "true site soil", resTruth.Req, resTruth.Current/1000)
	fmt.Printf("%-28s %12.4f %12.2f\n", "inverted two-layer", resFit.Req, resFit.Current/1000)
	fmt.Printf("%-28s %12.4f %12.2f\n", "uniform (geometric mean)", resUni.Req, resUni.Current/1000)

	errFit := 100 * (resFit.Req - resTruth.Req) / resTruth.Req
	errUni := 100 * (resUni.Req - resTruth.Req) / resTruth.Req
	fmt.Printf("\nReq error: inverted model %+.1f%%, uniform model %+.1f%% —\n", errFit, errUni)
	fmt.Println("the paper's point: when resistivity varies with depth, multilayer models are")
	fmt.Println("mandatory, and the survey+inversion recovers them from measurable data.")
}
