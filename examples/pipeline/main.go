// Pipeline: transferred-potential study — a buried metallic pipeline passes
// near the substation; during a fault, the earth around it rises to a
// potential that the (insulated, remotely grounded) pipeline does not
// follow, stressing its coating and any touch point. This is the classic
// "transferred potential" hazard of IEEE Std 80, computed here directly
// from the BEM potential field (eq. 4.2 evaluated along the pipe route).
//
//	go run ./examples/pipeline
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"earthing"
)

func main() {
	ctx := context.Background()
	// The substation: 60×60 m grid, 25 kA fault, two-layer soil.
	g := earthing.RectGrid(0, 0, 60, 60, 7, 7, 0.8, 0.006)
	model := earthing.TwoLayerSoil(1.0/120, 1.0/35, 1.8)

	unit, err := earthing.Analyze(ctx, g, model, earthing.Config{GPR: 1})
	if err != nil {
		log.Fatal(err)
	}
	const fault = 25_000.0
	// The BEM solve is linear in GPR: rescale the unit solution instead of
	// analyzing twice.
	gpr := fault * unit.Req
	res, err := unit.WithGPR(gpr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("substation: Req = %.4f ohm, GPR at %.0f kA fault = %.0f V\n",
		res.Req, fault/1000, gpr)

	// The pipeline: buried at 1.2 m, passing 20 m south of the grid edge,
	// running east-west for 300 m.
	const (
		pipeY     = -20.0
		pipeDepth = 1.2
	)
	fmt.Printf("\npipeline route: y = %.0f m, depth %.1f m\n", pipeY, pipeDepth)
	fmt.Printf("%10s %16s\n", "x (m)", "soil V (volts)")
	maxV, minV := math.Inf(-1), math.Inf(1)
	for x := -120.0; x <= 180.0; x += 30 {
		v := res.PotentialAt(earthing.V(x, pipeY, pipeDepth))
		maxV = math.Max(maxV, v)
		minV = math.Min(minV, v)
		fmt.Printf("%10.0f %16.0f\n", x, v)
	}

	// The pipe is metallically continuous: it floats near the average soil
	// potential along its (long) route, which remote ends pull toward zero.
	// The coating stress is bounded by the local soil potential; the touch
	// hazard at an exposed valve is the difference to the remote pipe
	// potential (≈ 0 for a long line).
	fmt.Printf("\nsoil potential along the route: %.0f .. %.0f V\n", minV, maxV)
	fmt.Printf("worst-case transferred-touch at an exposed fitting: ≈ %.0f V\n", maxV)

	crit := earthing.SafetyCriteria{FaultDuration: 0.5, SoilRho: 120}
	fmt.Printf("tolerable touch limit (no surfacing): %.0f V\n", crit.TouchLimit())
	if maxV > crit.TouchLimit() {
		fmt.Println("→ mitigation required: isolate fittings, add gradient control wire, or")
		fmt.Println("  increase the separation — the standard transferred-potential playbook.")
	} else {
		fmt.Println("→ the pipeline corridor is outside the hazardous zone.")
	}
}
