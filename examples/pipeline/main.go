// Pipeline: transferred-potential study — a buried metallic pipeline passes
// near the substation; during a fault, the earth around it rises to a
// potential that the (insulated, remotely grounded) pipeline does not
// follow, stressing its coating and any touch point. This is the classic
// "transferred potential" hazard of IEEE Std 80, computed here directly
// from the BEM potential field (eq. 4.2 evaluated along the pipe route).
//
// The second half repeats the study against a groundd instance under
// deliberate overload, showing the production client pattern: honor the
// Retry-After hint groundd attaches to 429 responses, with jittered
// exponential backoff.
//
//	go run ./examples/pipeline
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"earthing"
	"earthing/internal/backoff"
	"earthing/internal/server"
)

func main() {
	ctx := context.Background()
	// The substation: 60×60 m grid, 25 kA fault, two-layer soil.
	g := earthing.RectGrid(0, 0, 60, 60, 7, 7, 0.8, 0.006)
	model := earthing.TwoLayerSoil(1.0/120, 1.0/35, 1.8)

	unit, err := earthing.Analyze(ctx, g, model, earthing.Config{GPR: 1})
	if err != nil {
		log.Fatal(err)
	}
	const fault = 25_000.0
	// The BEM solve is linear in GPR: rescale the unit solution instead of
	// analyzing twice.
	gpr := fault * unit.Req
	res, err := unit.WithGPR(gpr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("substation: Req = %.4f ohm, GPR at %.0f kA fault = %.0f V\n",
		res.Req, fault/1000, gpr)

	// The pipeline: buried at 1.2 m, passing 20 m south of the grid edge,
	// running east-west for 300 m.
	const (
		pipeY     = -20.0
		pipeDepth = 1.2
	)
	fmt.Printf("\npipeline route: y = %.0f m, depth %.1f m\n", pipeY, pipeDepth)
	fmt.Printf("%10s %16s\n", "x (m)", "soil V (volts)")
	maxV, minV := math.Inf(-1), math.Inf(1)
	for x := -120.0; x <= 180.0; x += 30 {
		v := res.PotentialAt(earthing.V(x, pipeY, pipeDepth))
		maxV = math.Max(maxV, v)
		minV = math.Min(minV, v)
		fmt.Printf("%10.0f %16.0f\n", x, v)
	}

	// The pipe is metallically continuous: it floats near the average soil
	// potential along its (long) route, which remote ends pull toward zero.
	// The coating stress is bounded by the local soil potential; the touch
	// hazard at an exposed valve is the difference to the remote pipe
	// potential (≈ 0 for a long line).
	fmt.Printf("\nsoil potential along the route: %.0f .. %.0f V\n", minV, maxV)
	fmt.Printf("worst-case transferred-touch at an exposed fitting: ≈ %.0f V\n", maxV)

	crit := earthing.SafetyCriteria{FaultDuration: 0.5, SoilRho: 120}
	fmt.Printf("tolerable touch limit (no surfacing): %.0f V\n", crit.TouchLimit())
	if maxV > crit.TouchLimit() {
		fmt.Println("→ mitigation required: isolate fittings, add gradient control wire, or")
		fmt.Println("  increase the separation — the standard transferred-potential playbook.")
	} else {
		fmt.Println("→ the pipeline corridor is outside the hazardous zone.")
	}

	burstAgainstGroundd()
}

// burstAgainstGroundd runs the same substation through a groundd instance
// sized to shed load (one solve slot, one queue slot) and hits it with a
// burst of concurrent requests. The overflow gets 429 with a Retry-After
// hint derived from the server's queue depth; postWithRetry absorbs those
// with jittered exponential backoff, so the whole burst completes without
// a retry storm.
func burstAgainstGroundd() {
	fmt.Println("\n--- burst of 4 solves against groundd (1 slot + 1 queue) ---")

	srv := server.New(server.Config{MaxConcurrent: 1, QueueDepth: 1, CacheEntries: -1})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv}
	go func() {
		if err := hs.Serve(ln); err != http.ErrServerClosed {
			log.Fatalf("serve: %v", err)
		}
	}()
	//lint:ignore errdrop demo server torn down at exit; nothing left to salvage
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	var (
		wg      sync.WaitGroup
		shed    atomic.Int32
		lines   = make([]string, 4)
		client  = &http.Client{Timeout: time.Minute}
		onRetry = func(wait time.Duration) { shed.Add(1) }
	)
	for i := range lines {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Per-client RNG: rand.Rand is not goroutine-safe, and distinct
			// seeds keep concurrent retry schedules decorrelated.
			rng := rand.New(rand.NewSource(int64(i) + 1))
			gpr := float64(2000 * (i + 1))
			body := fmt.Sprintf(`{
				"grid": {"rect": {"width": 60, "height": 60, "nx": 7, "ny": 7, "depth": 0.8, "radius": 0.006}},
				"soil": {"kind": "two-layer", "gamma1": %.12g, "gamma2": %.12g, "h1": 1.8},
				"gpr": %g}`, 1.0/120, 1.0/35, gpr)
			data, err := postWithRetry(client, base+"/v1/solve", body, rng, onRetry)
			if err != nil {
				lines[i] = fmt.Sprintf("request %d: %v", i, err)
				return
			}
			var out struct {
				ReqOhms float64 `json:"reqOhms"`
			}
			if err := json.Unmarshal(data, &out); err != nil {
				lines[i] = fmt.Sprintf("request %d: bad response: %v", i, err)
				return
			}
			lines[i] = fmt.Sprintf("request %d (GPR %5.0f V): Req = %.4f ohm", i, gpr, out.ReqOhms)
		}(i)
	}
	wg.Wait()
	for _, l := range lines {
		fmt.Println(l)
	}
	fmt.Printf("429 responses absorbed by Retry-After backoff: %d\n", shed.Load())
}

// postWithRetry POSTs a JSON body and retries on 429. The wait before each
// retry honors the server's Retry-After hint when one is present (groundd
// derives it from queue depth), falling back to an exponential schedule,
// and is jittered to U[w/2, w) so a burst of clients does not retry in
// lockstep. Any status other than 200 and 429 fails immediately.
func postWithRetry(client *http.Client, url, body string, rng *rand.Rand, onRetry func(time.Duration)) ([]byte, error) {
	policy := backoff.Default()
	const maxAttempts = 8
	for attempt := 1; ; attempt++ {
		resp, err := client.Post(url, "application/json", strings.NewReader(body))
		if err != nil {
			return nil, err
		}
		data, err := io.ReadAll(resp.Body)
		//lint:ignore errdrop body already drained by ReadAll; Close cannot lose data
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		if resp.StatusCode == http.StatusOK {
			return data, nil
		}
		if resp.StatusCode != http.StatusTooManyRequests || attempt == maxAttempts {
			return nil, fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(data))
		}
		var wait time.Duration
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			// The server's hint overrides the exponential base for this
			// attempt; the jitter still applies so a burst spreads out.
			wait = backoff.Jitter(time.Duration(secs)*time.Second, rng)
		} else {
			wait = policy.Wait(attempt, rng)
		}
		if onRetry != nil {
			onRetry(wait)
		}
		time.Sleep(wait)
	}
}
