// Barberá: reproduce the paper's Example 1 (§5.1) — the grounding grid of
// the Barberá substation (408 conductor segments, right triangle 143 × 89 m)
// analyzed with a uniform and a two-layer soil model at 10 kV GPR, showing
// how the soil model changes every design parameter.
//
//	go run ./examples/barbera
package main

import (
	"context"
	"fmt"
	"log"

	"earthing"
)

func main() {
	ctx := context.Background()
	g := earthing.Barbera()
	fmt.Printf("Barberá grid: %d segments, %.0f m of conductor, protects %.0f m²\n",
		len(g.Conductors), g.TotalLength(), g.PlanArea()/2)

	cases := []struct {
		name  string
		model earthing.SoilModel
		// Published results (§5.1).
		paperReq float64
		paperI   float64 // kA
	}{
		{"uniform γ=0.016", earthing.UniformSoil(0.016), 0.3128, 31.97},
		{"two-layer γ1=0.005 γ2=0.016 h=1m", earthing.TwoLayerSoil(0.005, 0.016, 1.0), 0.3704, 26.99},
	}

	for _, c := range cases {
		res, err := earthing.Analyze(ctx, g, c.model, earthing.Config{GPR: 10_000})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s:\n", c.name)
		fmt.Printf("  Req = %.4f ohm   (paper: %.4f)\n", res.Req, c.paperReq)
		fmt.Printf("  I   = %.2f kA    (paper: %.2f)\n", res.Current/1000, c.paperI)
		fmt.Printf("  matrix generation: %v (%d elements, %d DoF)\n",
			res.Timings.MatrixGen, len(res.Mesh.Elements), res.Mesh.NumDoF)

		// Touch/step voltages drive the safety verdict (§1): compare the
		// two soil models.
		v, err := earthing.ComputeVoltages(ctx, res, 2, earthing.SurfaceOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  max touch %.0f V, max step %.0f V\n", v.MaxTouch, v.MaxStep)
	}

	fmt.Println("\nNote: the two-layer model raises Req and redistributes surface potential —")
	fmt.Println("the paper's case for mandatory multilayer analysis when soil is stratified.")
}
