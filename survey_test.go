package earthing_test

import (
	"context"
	"math"
	"strings"
	"testing"

	"earthing"
)

func TestSurveyFacade(t *testing.T) {
	truth := earthing.TwoLayerSoil(1.0/300, 1.0/60, 1.2)
	spacings := earthing.SurveySpacings(0.3, 40, 10)
	if len(spacings) != 10 {
		t.Fatal("spacings wrong")
	}
	data := earthing.SimulateSurvey(truth, spacings, 0, nil)
	fit, err := earthing.FitTwoLayerSoil(data, earthing.SurveyInvertOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Rho1-300)/300 > 0.05 || math.Abs(fit.H-1.2)/1.2 > 0.1 {
		t.Errorf("fit = %+v", fit)
	}
	rho, rms, err := earthing.FitUniformSoil(data)
	if err != nil {
		t.Fatal(err)
	}
	if rho <= 60 || rho >= 300 {
		t.Errorf("uniform rho = %v outside layer range", rho)
	}
	if rms < 0.05 {
		t.Error("layered data should misfit a uniform model")
	}
	// Forward model sanity through the facade.
	if got := earthing.ApparentResistivity(earthing.UniformSoil(0.01), 3); math.Abs(got-100) > 1e-6 {
		t.Errorf("ApparentResistivity = %v", got)
	}
}

func TestFieldFacade(t *testing.T) {
	g := earthing.RectGrid(0, 0, 20, 20, 3, 3, 0.8, 0.006)
	res, err := earthing.Analyze(context.Background(), g, earthing.UniformSoil(0.02), earthing.Config{GPR: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	e := earthing.ElectricFieldAt(res, earthing.V(30, 10, 0))
	if e.X <= 0 {
		t.Errorf("E at +x side = %v", e)
	}
	j := earthing.CurrentDensityAt(res, earthing.V(30, 10, 0.5))
	// J = γ·E pointwise.
	e2 := earthing.ElectricFieldAt(res, earthing.V(30, 10, 0.5))
	if math.Abs(j.X-0.02*e2.X) > 1e-9*(1+math.Abs(j.X)) {
		t.Errorf("J = %v vs γE = %v", j.X, 0.02*e2.X)
	}

	rep := earthing.ComputeLeakage(res)
	if math.Abs(rep.Total-res.Current) > 1e-6*(1+res.Current) {
		t.Errorf("leakage total %v vs current %v", rep.Total, res.Current)
	}
	var csv, sum strings.Builder
	if err := earthing.WriteLeakageCSV(&csv, rep); err != nil {
		t.Fatal(err)
	}
	if err := earthing.WriteLeakageSummary(&sum, rep, 3); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sum.String(), "top 3") {
		t.Error("summary malformed")
	}

	s, step := earthing.StepVoltageProfile(res, 10, 10, 60, 10, 20)
	if len(s) != 20 || step[0] < 0 {
		t.Error("step profile malformed")
	}
}

func TestOptimizeFacade(t *testing.T) {
	spec := earthing.OptimizeSpec{
		Width: 10, Height: 10,
		Model:        earthing.UniformSoil(0.02),
		FaultCurrent: 100,
		Safety:       earthing.SafetyCriteria{FaultDuration: 0.5, SoilRho: 50},
		MinLines:     2, MaxLines: 4,
		MaxRods:  2,
		MinDepth: 0.5, MaxDepth: 0.7, DepthStep: 0.1,
		VoltageRes: 2.5,
	}
	opt := earthing.OptimizeOptions{Starts: 2, MaxEvals: 80}
	opt.Config.BEM.SeriesTol = 1e-2

	var updates int
	best, stats, err := earthing.OptimizeStream(context.Background(), spec, opt,
		func(p earthing.OptimizeProgress) error { updates++; return nil },
		earthing.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if best == nil || !best.Feasible || !best.Verdict.Safe() {
		t.Fatalf("best = %+v", best)
	}
	if updates == 0 || stats.Evaluated == 0 {
		t.Errorf("updates %d, stats %+v", updates, stats)
	}

	// An impossible fault current surfaces the sentinel error with the
	// least-violating design attached.
	spec.FaultCurrent = 1e6
	worst, _, err := earthing.Optimize(context.Background(), spec, opt)
	if err != earthing.ErrNoFeasibleOptimize {
		t.Errorf("err = %v, want ErrNoFeasibleOptimize", err)
	}
	if worst == nil || worst.Feasible {
		t.Errorf("worst = %+v, want infeasible design", worst)
	}
}

func TestDesignFacade(t *testing.T) {
	space := earthing.DesignSpace{Width: 30, Height: 30, MinLines: 3, MaxLines: 7}
	best, trace, err := earthing.DesignSearch(space, earthing.UniformSoil(0.02),
		earthing.DesignTargets{MaxReq: 0.85}, earthing.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if best == nil || best.Result.Req > 0.85 {
		t.Fatalf("best = %+v", best)
	}
	if len(trace) == 0 {
		t.Error("empty trace")
	}
	// Infeasible target surfaces the sentinel error.
	_, _, err = earthing.DesignSearch(
		earthing.DesignSpace{Width: 5, Height: 5, MinLines: 2, MaxLines: 3},
		earthing.UniformSoil(0.001), earthing.DesignTargets{MaxReq: 0.01}, earthing.Config{})
	if err != earthing.ErrNoFeasibleDesign {
		t.Errorf("err = %v", err)
	}
}
